"""Tests for attribute indexes and the attribute-position table."""

import pytest

from repro.relational.index import AttributeIndex, AttributePositions, DatabaseIndex
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.workloads.tourist import tourist_database


@pytest.fixture
def sites():
    relation = Relation("Sites", ["Country", "City", "Site"], label_prefix="s")
    relation.add(["Canada", "London", "Air Show"], label="s1")
    relation.add(["Canada", NULL, "Mount Logan"], label="s2")
    relation.add(["UK", "London", "Buckingham"], label="s3")
    return relation


class TestAttributeIndex:
    def test_lookup_returns_matching_tuples_in_order(self, sites):
        index = AttributeIndex(sites, "Country")
        assert [t.label for t in index.lookup("Canada")] == ["s1", "s2"]

    def test_nulls_are_not_indexed(self, sites):
        index = AttributeIndex(sites, "City")
        assert len(index) == 2
        assert index.lookup(NULL) == []

    def test_lookup_of_absent_value_is_empty(self, sites):
        index = AttributeIndex(sites, "Country")
        assert index.lookup("France") == []

    def test_values_iterates_distinct_values(self, sites):
        index = AttributeIndex(sites, "Country")
        assert set(index.values()) == {"Canada", "UK"}

    def test_unknown_attribute_raises(self, sites):
        with pytest.raises(KeyError):
            AttributeIndex(sites, "Stars")

    def test_metadata(self, sites):
        index = AttributeIndex(sites, "Country")
        assert index.relation_name == "Sites"
        assert index.attribute == "Country"


class TestDatabaseIndex:
    def test_lookup_per_relation(self):
        database = tourist_database()
        index = DatabaseIndex(database)
        labels = [t.label for t in index.lookup("Accommodations", "Country", "Canada")]
        assert labels == ["a1", "a2"]

    def test_join_candidates_excludes_own_relation(self):
        database = tourist_database()
        index = DatabaseIndex(database)
        c1 = database.tuple_by_label("c1")
        candidates = index.join_candidates(c1)
        assert all(t.relation_name != "Climates" for t in candidates)
        labels = {t.label for t in candidates}
        # Tuples of other relations sharing Country=Canada.
        assert labels == {"a1", "a2", "s1", "s2"}

    def test_join_candidates_of_null_key_tuple(self):
        database = tourist_database()
        index = DatabaseIndex(database)
        s2 = database.tuple_by_label("s2")  # City is null
        labels = {t.label for t in index.join_candidates(s2)}
        # Only the Country value can produce candidates.
        assert labels == {"c1", "a1", "a2"}


class TestAttributePositions:
    def test_positions_follow_sorted_attribute_order(self):
        database = tourist_database()
        positions = AttributePositions(database)
        assert positions.position("Accommodations", "City") == 0
        assert positions.position("Accommodations", "Country") == 1
        assert positions.position("Accommodations", "Hotel") == 2
        assert positions.position("Accommodations", "Stars") == 3

    def test_sorted_attributes(self):
        database = tourist_database()
        positions = AttributePositions(database)
        assert positions.sorted_attributes("Sites") == ["City", "Country", "Site"]

    def test_accepts_plain_relation_list(self, sites):
        positions = AttributePositions([sites])
        assert "Sites" in positions
        assert positions.position("Sites", "City") == 0
