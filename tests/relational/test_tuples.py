"""Tests for null-tolerant tuples."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.nulls import NULL
from repro.relational.schema import Schema
from repro.relational.tuples import Tuple, tuple_from_mapping


@pytest.fixture
def climates_schema():
    return Schema(["Country", "Climate"])


@pytest.fixture
def sites_schema():
    return Schema(["Country", "City", "Site"])


def make_tuple(schema, values, label="t1", name="R", **kwargs):
    return Tuple(name, schema, values, label, **kwargs)


class TestTupleConstruction:
    def test_value_count_must_match_schema(self, climates_schema):
        with pytest.raises(SchemaError):
            make_tuple(climates_schema, ["Canada"])

    def test_none_becomes_null(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", None])
        assert t["Climate"] is NULL

    def test_probability_must_be_in_unit_interval(self, climates_schema):
        with pytest.raises(SchemaError):
            make_tuple(climates_schema, ["Canada", "diverse"], probability=1.5)

    def test_importance_and_probability_defaults(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", "diverse"])
        assert t.importance == 0.0
        assert t.probability == 1.0


class TestTupleAccess:
    def test_getitem_and_get(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", "diverse"])
        assert t["Country"] == "Canada"
        assert t.get("Missing", "fallback") == "fallback"

    def test_getitem_unknown_attribute_raises(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", "diverse"])
        with pytest.raises(SchemaError):
            t["Hotel"]

    def test_is_null_and_non_null_items(self, sites_schema):
        t = make_tuple(sites_schema, ["Canada", NULL, "Mount Logan"])
        assert t.is_null("City")
        assert not t.is_null("Country")
        assert dict(t.non_null_items()) == {"Country": "Canada", "Site": "Mount Logan"}

    def test_as_dict_and_items(self, climates_schema):
        t = make_tuple(climates_schema, ["UK", "temperate"])
        assert t.as_dict() == {"Country": "UK", "Climate": "temperate"}
        assert list(t.items()) == [("Country", "UK"), ("Climate", "temperate")]

    def test_has_attribute(self, climates_schema):
        t = make_tuple(climates_schema, ["UK", "temperate"])
        assert t.has_attribute("Country")
        assert not t.has_attribute("City")


class TestTupleEqualityAndOrdering:
    def test_equal_tuples_hash_equal(self, climates_schema):
        first = make_tuple(climates_schema, ["Canada", "diverse"], label="c1")
        second = make_tuple(climates_schema, ["Canada", "diverse"], label="c1")
        assert first == second
        assert hash(first) == hash(second)

    def test_label_distinguishes_tuples(self, climates_schema):
        first = make_tuple(climates_schema, ["Canada", "diverse"], label="c1")
        second = make_tuple(climates_schema, ["Canada", "diverse"], label="c2")
        assert first != second

    def test_ordering_by_relation_then_label(self, climates_schema):
        first = make_tuple(climates_schema, ["Canada", "diverse"], label="c1", name="A")
        second = make_tuple(climates_schema, ["UK", "temperate"], label="c2", name="B")
        assert first < second
        assert sorted([second, first]) == [first, second]


class TestJoinConsistency:
    def test_agreeing_shared_attribute_is_consistent(self, climates_schema, sites_schema):
        climate = make_tuple(climates_schema, ["Canada", "diverse"], name="Climates")
        site = make_tuple(sites_schema, ["Canada", "London", "Air Show"], name="Sites")
        assert climate.join_consistent_with(site)
        assert site.join_consistent_with(climate)

    def test_disagreeing_shared_attribute_is_inconsistent(self, climates_schema, sites_schema):
        climate = make_tuple(climates_schema, ["UK", "temperate"], name="Climates")
        site = make_tuple(sites_schema, ["Canada", "London", "Air Show"], name="Sites")
        assert not climate.join_consistent_with(site)

    def test_null_shared_attribute_is_inconsistent(self, climates_schema, sites_schema):
        climate = make_tuple(climates_schema, ["Canada", "diverse"], name="Climates")
        site = make_tuple(sites_schema, [NULL, "London", "Air Show"], name="Sites")
        assert not climate.join_consistent_with(site)

    def test_no_shared_attributes_is_vacuously_consistent(self):
        left = make_tuple(Schema(["A"]), ["x"], name="L")
        right = make_tuple(Schema(["B"]), ["y"], name="R2")
        assert left.join_consistent_with(right)

    def test_connects_to_follows_schema_sharing(self, climates_schema, sites_schema):
        climate = make_tuple(climates_schema, ["Canada", "diverse"], name="Climates")
        site = make_tuple(sites_schema, ["Canada", "London", "Air Show"], name="Sites")
        isolated = make_tuple(Schema(["Altitude"]), [12], name="Peaks")
        assert climate.connects_to(site)
        assert not climate.connects_to(isolated)


class TestTupleDerivation:
    def test_with_importance_returns_new_tuple(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", "diverse"])
        changed = t.with_importance(7.0)
        assert changed.importance == 7.0
        assert t.importance == 0.0
        assert changed == t  # identity is (relation, label, values)

    def test_with_probability_returns_new_tuple(self, climates_schema):
        t = make_tuple(climates_schema, ["Canada", "diverse"])
        assert t.with_probability(0.25).probability == 0.25

    def test_tuple_from_mapping_fills_missing_with_null(self, sites_schema):
        t = tuple_from_mapping("Sites", sites_schema, {"Country": "UK"}, "s9")
        assert t["Country"] == "UK"
        assert t["City"] is NULL
        assert t["Site"] is NULL

    def test_tuple_from_mapping_rejects_unknown_keys(self, climates_schema):
        with pytest.raises(SchemaError):
            tuple_from_mapping("Climates", climates_schema, {"Stars": 5}, "c9")
