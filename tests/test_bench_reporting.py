"""Tests for the benchmark reporting helpers and the package metadata."""

import pytest

import repro
from repro.bench.reporting import Table, format_table, print_table, time_call


class TestFormatTable:
    def test_columns_are_aligned(self):
        rendered = format_table("Demo", ["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert lines[2].startswith("name")
        header_width = len(lines[2])
        assert all(len(line) <= header_width + 2 for line in lines[3:])
        assert "longer" in rendered

    def test_table_class_accumulates_rows(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        rendered = table.render()
        assert "2.5000" in rendered
        assert "None" in rendered

    def test_row_arity_is_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_rendering(self):
        table = Table("T", ["v"])
        table.add_row(0.000001)
        table.add_row(123456.0)
        table.add_row(float("nan"))
        rendered = table.render()
        assert "e-06" in rendered
        assert "e+05" in rendered or "123456" in rendered
        assert "nan" in rendered

    def test_print_table_writes_to_stdout(self, capsys):
        print_table("Printed", ["x"], [[1], [2]])
        output = capsys.readouterr().out
        assert "Printed" in output and "2" in output


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(lambda: sum(range(1000)))
        assert result == 499500
        assert elapsed >= 0.0


class TestPackageMetadata:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
