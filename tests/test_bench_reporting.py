"""Tests for the benchmark reporting helpers and the package metadata."""

import json

import pytest

import repro
from repro.bench.reporting import (
    BenchArtifacts,
    Table,
    experiment_id,
    format_table,
    print_table,
    time_call,
)


class TestFormatTable:
    def test_columns_are_aligned(self):
        rendered = format_table("Demo", ["name", "value"], [["a", "1"], ["longer", "22"]])
        lines = rendered.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        assert lines[2].startswith("name")
        header_width = len(lines[2])
        assert all(len(line) <= header_width + 2 for line in lines[3:])
        assert "longer" in rendered

    def test_table_class_accumulates_rows(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", None)
        rendered = table.render()
        assert "2.5000" in rendered
        assert "None" in rendered

    def test_row_arity_is_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_rendering(self):
        table = Table("T", ["v"])
        table.add_row(0.000001)
        table.add_row(123456.0)
        table.add_row(float("nan"))
        rendered = table.render()
        assert "e-06" in rendered
        assert "e+05" in rendered or "123456" in rendered
        assert "nan" in rendered

    def test_print_table_writes_to_stdout(self, capsys):
        print_table("Printed", ["x"], [[1], [2]])
        output = capsys.readouterr().out
        assert "Printed" in output and "2" in output


class TestExperimentId:
    def test_standard_module_names(self):
        assert experiment_id("bench_e6_indexing") == "E6"
        assert experiment_id("bench_e10_serving") == "E10"
        assert experiment_id("bench_table2_tourist") == "TABLE2"
        assert experiment_id("benchmarks.bench_e1_total_runtime") == "E1"

    def test_fallback_for_unconventional_names(self):
        assert experiment_id("some_module") == "SOME_MODULE"


class TestBenchArtifacts:
    def test_record_writes_a_machine_readable_file(self, tmp_path):
        artifacts = BenchArtifacts(tmp_path)
        path = artifacts.record(
            "E6", "E6: a table", ["k", "seconds"], [[1, 0.5], [2, "0.75"]]
        )
        assert path == tmp_path / "BENCH_E6.json"
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "E6"
        assert payload["schema_version"] == BenchArtifacts.SCHEMA_VERSION
        assert payload["tables"] == [
            {
                "title": "E6: a table",
                "headers": ["k", "seconds"],
                "rows": [[1, 0.5], [2, "0.75"]],
            }
        ]

    def test_multiple_tables_accumulate_per_experiment(self, tmp_path):
        artifacts = BenchArtifacts(tmp_path)
        artifacts.record("E10", "E10a", ["x"], [[1]])
        artifacts.record("E10", "E10b", ["y"], [[2]])
        artifacts.record("E6", "E6", ["z"], [[3]])
        e10 = json.loads((tmp_path / "BENCH_E10.json").read_text())
        assert [t["title"] for t in e10["tables"]] == ["E10a", "E10b"]
        assert (tmp_path / "BENCH_E6.json").exists()

    def test_non_serializable_cells_are_stringified(self, tmp_path):
        artifacts = BenchArtifacts(tmp_path)
        path = artifacts.record("E1", "t", ["obj"], [[object()], [None], [True]])
        rows = json.loads(path.read_text())["tables"][0]["rows"]
        assert isinstance(rows[0][0], str)
        assert rows[1][0] is None and rows[2][0] is True

    def test_reset_drops_stale_artifacts(self, tmp_path):
        artifacts = BenchArtifacts(tmp_path)
        artifacts.record("E1", "t", ["a"], [[1]])
        artifacts.reset()
        assert not list(tmp_path.glob("BENCH_*.json"))
        # A fresh session starts its table list over.
        path = artifacts.record("E1", "t2", ["a"], [[2]])
        assert len(json.loads(path.read_text())["tables"]) == 1


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(lambda: sum(range(1000)))
        assert result == 499500
        assert elapsed >= 0.0


class TestPackageMetadata:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_api_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
