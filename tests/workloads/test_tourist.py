"""Tests for the encoded running example (Table 1 / Fig. 4)."""

import pytest

from repro.relational.nulls import is_null
from repro.workloads.tourist import (
    CLIMATE_PREFERENCE,
    FIG4_PROBABILITIES,
    FIG4_SIMILARITIES,
    TABLE2_TUPLE_SETS,
    TABLE3_TRACE,
    noisy_tourist_database,
    noisy_tourist_similarity,
    table2_padded_rows,
    tourist_database,
    tourist_importance,
)


class TestTable1Data:
    def test_relations_and_schemas(self):
        database = tourist_database()
        assert database.relation_names == ["Climates", "Accommodations", "Sites"]
        assert database.relation("Climates").attributes == ("Country", "Climate")
        assert database.relation("Accommodations").attributes == (
            "Country",
            "City",
            "Hotel",
            "Stars",
        )
        assert database.relation("Sites").attributes == ("Country", "City", "Site")

    def test_tuple_counts(self):
        database = tourist_database()
        assert [len(r) for r in database.relations] == [3, 3, 4]

    def test_exact_cell_values(self):
        database = tourist_database()
        assert database.tuple_by_label("c3").as_dict() == {
            "Country": "Bahamas",
            "Climate": "tropical",
        }
        assert database.tuple_by_label("a2")["Hotel"] == "Ramada"
        assert database.tuple_by_label("s1")["Site"] == "Air Show"

    def test_the_two_null_cells_of_table1(self):
        database = tourist_database()
        assert database.tuple_by_label("a3").is_null("Stars")
        assert database.tuple_by_label("s2").is_null("City")
        total_nulls = sum(relation.null_count() for relation in database.relations)
        assert total_nulls == 2

    def test_database_is_connected(self):
        tourist_database().validate_connected()

    def test_expected_constants_are_consistent(self):
        assert len(TABLE2_TUPLE_SETS) == 6
        assert len(TABLE3_TRACE) == 7  # initialization + 6 iterations
        final_complete = TABLE3_TRACE[-1][2]
        assert set(final_complete) == set(TABLE2_TUPLE_SETS)
        for row in table2_padded_rows():
            assert row["labels"] in TABLE2_TUPLE_SETS


class TestImportanceScenario:
    def test_climate_preference_ordering(self):
        assert (
            CLIMATE_PREFERENCE["tropical"]
            > CLIMATE_PREFERENCE["temperate"]
            > CLIMATE_PREFERENCE["diverse"]
        )

    def test_importance_covers_every_tuple(self):
        database = tourist_database()
        importance = tourist_importance()
        for t in database.tuples():
            assert t.label in importance

    def test_hotel_importance_tracks_stars(self):
        importance = tourist_importance()
        assert importance["a1"] > importance["a2"] > importance["a3"]


class TestFig4Scenario:
    def test_misspelled_country(self):
        database = noisy_tourist_database()
        assert database.tuple_by_label("c1")["Country"] == "Cannada"
        assert database.tuple_by_label("a1")["Country"] == "Canada"

    def test_probabilities_are_attached_to_tuples(self):
        database = noisy_tourist_database()
        for label, probability in FIG4_PROBABILITIES.items():
            assert database.tuple_by_label(label).probability == pytest.approx(probability)

    def test_similarity_table_is_symmetric_and_in_range(self):
        database = noisy_tourist_database()
        sim = noisy_tourist_similarity()
        for first, second, value in FIG4_SIMILARITIES:
            t1 = database.tuple_by_label(first)
            t2 = database.tuple_by_label(second)
            assert sim(t1, t2) == pytest.approx(value)
            assert sim(t2, t1) == pytest.approx(value)
            assert 0.0 <= value <= 1.0

    def test_clean_and_noisy_database_have_the_same_shape(self):
        clean = tourist_database()
        noisy = noisy_tourist_database()
        assert clean.relation_names == noisy.relation_names
        assert [len(r) for r in clean.relations] == [len(r) for r in noisy.relations]
