"""Mutation ops in the streaming workload and the recompute reference."""

from __future__ import annotations

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.workloads.streaming import (
    Arrival,
    Removal,
    ResultEvent,
    StreamSummary,
    Update,
    inject_mutations,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)


def _key(tuple_set):
    return frozenset((t.relation_name, t.label, t.values) for t in tuple_set)


class TestInjectMutations:
    def test_deterministic_and_targets_distinct_base_tuples(self):
        first = streaming_chain_workload(relations=3, base_tuples=4, arrivals=5, seed=2)
        second = streaming_chain_workload(relations=3, base_tuples=4, arrivals=5, seed=2)
        ops_a = inject_mutations(first, 4, seed=9)
        ops_b = inject_mutations(second, 4, seed=9)
        assert ops_a == ops_b
        mutations = [op for op in ops_a if isinstance(op, (Removal, Update))]
        assert len(mutations) == 4
        targets = [(op.relation_name, op.label) for op in mutations]
        assert len(set(targets)) == 4
        base_labels = {
            (relation.name, t.label)
            for relation in first.database.relations
            for t in relation
        }
        assert set(targets) <= base_labels
        # Arrivals are preserved, in order.
        assert [op for op in ops_a if isinstance(op, Arrival)] == first.arrivals

    def test_updates_change_values(self):
        workload = streaming_star_workload(spokes=3, base_tuples=4, arrivals=3, seed=1)
        ops = inject_mutations(workload, 5, seed=0)
        for op in ops:
            if isinstance(op, Update):
                original = workload.database.relation(
                    op.relation_name
                ).tuple_by_label(op.label)
                assert op.values != original.values

    def test_rejects_impossible_requests(self):
        workload = streaming_chain_workload(relations=3, base_tuples=2, arrivals=2)
        with pytest.raises(ValueError, match="non-negative"):
            inject_mutations(workload, -1)
        with pytest.raises(ValueError, match="cannot mutate"):
            inject_mutations(workload, 10_000)


class TestReplayReferenceWithMutations:
    def test_removals_emit_retract_events_and_net_matches_recompute(self):
        workload = streaming_star_workload(spokes=3, base_tuples=4, arrivals=3, seed=2)
        ops = inject_mutations(workload, 3, seed=4)
        summary = StreamSummary()
        events = list(
            replay_stream(workload.database, ops, use_index=True, summary=summary)
        )
        retracts = [
            e for e in events if isinstance(e, ResultEvent) and e.kind == "retract"
        ]
        assert retracts, "the schedule should have torn down at least one result"
        net = {_key(ts) for ts in summary.results}
        standing = set()
        for event in events:
            if not isinstance(event, ResultEvent):
                continue
            if event.kind == "retract":
                standing.discard(_key(event.tuple_set))
            else:
                standing.add(_key(event.tuple_set))
        assert standing == net
        fresh = {
            _key(ts)
            for ts in full_disjunction_sets(workload.database, use_index=True)
        }
        assert fresh <= net

    def test_arrival_only_streams_never_retract(self):
        workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=6, seed=3)
        events = list(
            replay_stream(workload.database, workload.arrivals, use_index=True)
        )
        assert all(
            event.kind == "emit"
            for event in events
            if isinstance(event, ResultEvent)
        )

    def test_score_only_update_retracts_and_reemits_with_the_new_score(self):
        # Regression: an update that changes only the importance is still a
        # mutation — rankings read it — so the reference must retract the
        # old-score results and emit the new-score ones, exactly like the
        # delta maintainer does.
        from repro.core.ranking import MaxRanking
        from repro.service.delta import incremental_replay_stream

        def run(stream_fn):
            workload = streaming_star_workload(
                spokes=3, base_tuples=3, arrivals=0, seed=4
            )
            target = next(iter(workload.database.relations[0]))
            ops = [
                Update(
                    target.relation_name, target.label, target.values,
                    importance=50.0,
                )
            ]
            events = list(
                stream_fn(
                    workload.database, ops, use_index=True,
                    ranking=MaxRanking(None),
                )
            )
            live = {}
            retracts = 0
            for event in events:
                if not isinstance(event, ResultEvent):
                    continue
                if event.kind == "retract":
                    live.pop(_key(event.tuple_set), None)
                    retracts += 1
                else:
                    live[_key(event.tuple_set)] = event.score
            return set(live.items()), retracts

        replay_standing, replay_retracts = run(replay_stream)
        delta_standing, delta_retracts = run(incremental_replay_stream)
        assert replay_retracts == delta_retracts > 0
        assert replay_standing == delta_standing
        assert any(score == 50.0 for _, score in replay_standing)

    def test_update_retracts_old_values_and_emits_new(self):
        workload = streaming_star_workload(spokes=3, base_tuples=3, arrivals=0, seed=5)
        target = next(iter(workload.database.relations[0]))
        new_values = tuple(f"{value}!" for value in target.values)
        events = list(
            replay_stream(
                workload.database,
                [Update(target.relation_name, target.label, new_values)],
                use_index=True,
            )
        )
        retracted = [
            e.tuple_set
            for e in events
            if isinstance(e, ResultEvent) and e.kind == "retract"
        ]
        emitted_after = [
            e.tuple_set
            for e in events
            if isinstance(e, ResultEvent) and e.kind == "emit" and e.after_arrivals
        ]
        assert all(
            any(t.label == target.label and t.values == target.values for t in ts)
            for ts in retracted
        )
        assert any(
            any(t.label == target.label and t.values == new_values for t in ts)
            for ts in emitted_after
        )
