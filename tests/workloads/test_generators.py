"""Tests for the synthetic workload generators."""

import pytest

from repro.baselines.acyclicity import is_gamma_acyclic
from repro.relational.nulls import is_null
from repro.workloads.generators import (
    chain_database,
    cycle_database,
    random_database,
    skewed_chain_database,
    star_database,
)


class TestChainDatabase:
    def test_shape(self):
        database = chain_database(relations=4, tuples_per_relation=7, seed=0)
        assert len(database) == 4
        assert all(len(relation) == 7 for relation in database)
        assert database.relation("R2").attributes == ("A1", "A2", "P2")

    def test_neighbouring_relations_share_an_attribute(self):
        database = chain_database(relations=4, seed=0)
        assert database.are_connected("R1", "R2")
        assert database.are_connected("R2", "R3")
        assert not database.are_connected("R1", "R3")
        assert database.is_connected()

    def test_determinism(self):
        first = chain_database(relations=3, tuples_per_relation=5, seed=42)
        second = chain_database(relations=3, tuples_per_relation=5, seed=42)
        assert [t.values for t in first.tuples()] == [t.values for t in second.tuples()]

    def test_different_seeds_differ(self):
        first = chain_database(relations=3, tuples_per_relation=10, seed=1)
        second = chain_database(relations=3, tuples_per_relation=10, seed=2)
        assert [t.values for t in first.tuples()] != [t.values for t in second.tuples()]

    def test_null_rate_zero_produces_no_nulls(self):
        database = chain_database(relations=3, tuples_per_relation=10, null_rate=0.0, seed=0)
        assert all(relation.null_count() == 0 for relation in database)

    def test_null_rate_one_nullifies_join_attributes(self):
        database = chain_database(relations=3, tuples_per_relation=5, null_rate=1.0, seed=0)
        for t in database.tuples():
            assert is_null(t[t.schema.attributes[0]])

    def test_rejects_too_few_relations(self):
        with pytest.raises(ValueError):
            chain_database(relations=1)

    def test_is_gamma_acyclic(self):
        assert is_gamma_acyclic(chain_database(relations=4, seed=0))


class TestStarDatabase:
    def test_every_relation_shares_the_hub(self):
        database = star_database(spokes=4, seed=0)
        for first in database.relation_names:
            for second in database.relation_names:
                if first != second:
                    assert database.are_connected(first, second)

    def test_output_grows_exponentially_with_spokes(self):
        from repro.core.full_disjunction import full_disjunction

        small = star_database(spokes=2, tuples_per_relation=4, hub_domain=2, seed=0)
        large = star_database(spokes=4, tuples_per_relation=4, hub_domain=2, seed=0)
        assert len(full_disjunction(large)) > 2 * len(full_disjunction(small))

    def test_rejects_too_few_spokes(self):
        with pytest.raises(ValueError):
            star_database(spokes=1)


class TestSkewedChainDatabase:
    def test_hot_relation_carries_the_factor(self):
        database = skewed_chain_database(
            relations=4, tuples_per_relation=6, hot_relation=2, hot_factor=8, seed=0
        )
        assert len(database.relation("R2")) == 48
        for name in ("R1", "R3", "R4"):
            assert len(database.relation(name)) == 6

    def test_chain_connectivity_is_preserved(self):
        database = skewed_chain_database(relations=4, seed=0)
        assert database.are_connected("R1", "R2")
        assert database.are_connected("R2", "R3")
        assert not database.are_connected("R1", "R3")
        assert database.is_connected()

    def test_determinism(self):
        first = skewed_chain_database(tuples_per_relation=5, seed=3)
        second = skewed_chain_database(tuples_per_relation=5, seed=3)
        assert [t.values for t in first.tuples()] == [
            t.values for t in second.tuples()
        ]

    def test_hot_factor_one_is_a_plain_chain_shape(self):
        database = skewed_chain_database(
            relations=3, tuples_per_relation=4, hot_factor=1, seed=0
        )
        assert all(len(relation) == 4 for relation in database)

    def test_plan_isolates_the_hot_pass_into_many_ranges(self):
        """The fixture's whole point: the hot pass splits, the cold ones don't."""
        from repro.exec import plan_bucket_ranges

        database = skewed_chain_database(
            relations=3, tuples_per_relation=6, hot_relation=2, hot_factor=8, seed=1
        )
        ranges_per_pass = {
            anchor: len(ranges) for anchor, ranges in plan_bucket_ranges(database)
        }
        assert ranges_per_pass["R2"] > ranges_per_pass["R1"]
        assert ranges_per_pass["R2"] > ranges_per_pass["R3"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            skewed_chain_database(relations=1)
        with pytest.raises(ValueError):
            skewed_chain_database(hot_relation=9, relations=3)
        with pytest.raises(ValueError):
            skewed_chain_database(hot_factor=0)


class TestCycleDatabase:
    def test_cycle_connectivity(self):
        database = cycle_database(relations=4, seed=0)
        assert database.are_connected("C1", "C2")
        assert database.are_connected("C4", "C1")
        assert not database.are_connected("C1", "C3")

    def test_not_gamma_acyclic(self):
        assert not is_gamma_acyclic(cycle_database(relations=3, seed=0))

    def test_rejects_too_few_relations(self):
        with pytest.raises(ValueError):
            cycle_database(relations=2)


class TestRandomDatabase:
    def test_connected_by_default(self):
        for seed in range(5):
            assert random_database(seed=seed).is_connected()

    def test_shape_parameters_are_respected(self):
        database = random_database(relations=4, arity=2, tuples_per_relation=3, seed=1)
        assert len(database) == 4
        assert all(len(relation) == 3 for relation in database)
        assert all(len(relation.schema) <= 2 for relation in database)

    def test_determinism(self):
        first = random_database(seed=7)
        second = random_database(seed=7)
        assert [t.values for t in first.tuples()] == [t.values for t in second.tuples()]
