"""The streaming-ingest workload and its replay driver."""

from __future__ import annotations

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.workloads.streaming import (
    IngestEvent,
    ResultEvent,
    StreamSummary,
    hold_back_arrivals,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)
from repro.workloads.generators import chain_database
from repro.workloads.tourist import tourist_database


def _keys(tuple_set):
    return frozenset((t.relation_name, t.label) for t in tuple_set)


class TestWorkloadGenerators:
    def test_chain_workload_shape(self):
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=6, seed=3
        )
        assert workload.database.tuple_count() == 12
        assert len(workload.arrivals) == 6
        assert workload.total_tuples() == 18

    def test_star_workload_shape(self):
        workload = streaming_star_workload(spokes=3, base_tuples=3, arrivals=5, seed=1)
        assert workload.database.tuple_count() == 9
        assert len(workload.arrivals) == 5

    def test_generators_are_deterministic(self):
        first = streaming_chain_workload(seed=9)
        second = streaming_chain_workload(seed=9)
        assert first.arrivals == second.arrivals
        assert [t.values for t in first.database.tuples()] == [
            t.values for t in second.database.tuples()
        ]

    def test_hold_back_interleaves_relations(self):
        workload = hold_back_arrivals(tourist_database(), fraction=0.5)
        names = [arrival.relation_name for arrival in workload.arrivals[:3]]
        # Round-robin across relations: the first arrivals hit distinct ones.
        assert len(set(names)) == len(names)

    def test_hold_back_survives_float_dust_and_keeps_the_one_tuple_floor(self):
        # 1 - 4/5 is 0.19999…; naive truncation would hold back nothing.
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=3, seed=2
        )
        assert len(workload.arrivals) == 3
        # Any positive fraction holds back at least one tuple per relation
        # that has more than one.
        tiny = hold_back_arrivals(tourist_database(), fraction=0.05)
        assert len(tiny.arrivals) == len(tourist_database().relations)

    def test_arrivals_preserve_importance_and_probability(self):
        from repro.relational.database import Database
        from repro.relational.relation import Relation

        database = Database()
        for name, attributes in (("R1", ["A", "B"]), ("R2", ["B", "C"])):
            relation = Relation(name, attributes)
            for row in range(4):
                relation.add(
                    [f"v{row}", f"w{row}"],
                    importance=float(row + 1),
                    probability=0.5,
                )
            database.add_relation(relation)
        workload = hold_back_arrivals(database, fraction=0.5)
        assert all(arrival.importance > 0 for arrival in workload.arrivals)
        kept = {r.name: len(r) for r in workload.database.relations}
        list(replay_stream(workload.database, workload.arrivals))
        for relation in workload.database.relations:
            streamed = list(relation)[kept[relation.name]:]
            expected = [
                a for a in workload.arrivals if a.relation_name == relation.name
            ]
            assert [t.importance for t in streamed] == [
                a.importance for a in expected
            ]
            assert all(t.probability == 0.5 for t in streamed)

    def test_hold_back_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            hold_back_arrivals(tourist_database(), fraction=1.0)


@pytest.mark.parametrize("backend", ["serial", "batched"])
@pytest.mark.parametrize("batch_size", [1, 3])
def test_streaming_ingest_builds_the_catalog_exactly_once(backend, batch_size):
    """The acceptance criterion: N streamed tuples, 1 catalog build."""
    workload = streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=6, seed=3
    )
    summary = StreamSummary()
    events = list(
        replay_stream(
            workload.database,
            workload.arrivals,
            batch_size=batch_size,
            use_index=True,
            backend=backend,
            summary=summary,
        )
    )
    assert summary.catalog_rebuilds == 1
    assert workload.database.catalog_rebuilds == 1
    assert summary.arrivals_applied == len(workload.arrivals)
    ingested = sum(e.applied for e in events if isinstance(e, IngestEvent))
    assert ingested == len(workload.arrivals)


def test_replay_emits_every_final_result_and_never_retracts():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=6, seed=3)
    summary = StreamSummary()
    events = list(
        replay_stream(workload.database, workload.arrivals, use_index=True,
                      summary=summary)
    )
    emitted = [_keys(e.tuple_set) for e in events if isinstance(e, ResultEvent)]
    assert len(emitted) == len(set(emitted)), "a result set was emitted twice"
    final = {_keys(ts) for ts in full_disjunction(workload.database)}
    assert final <= set(emitted)
    assert [_keys(ts) for ts in summary.results] == emitted


def test_replay_is_backend_agnostic():
    reference = None
    for backend in ("serial", "batched"):
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=5, seed=8
        )
        events = list(
            replay_stream(
                workload.database, workload.arrivals, batch_size=2,
                use_index=True, backend=backend,
            )
        )
        trace = [
            (_keys(e.tuple_set), e.after_arrivals)
            for e in events
            if isinstance(e, ResultEvent)
        ]
        if reference is None:
            reference = trace
        else:
            assert trace == reference


def test_replay_matches_static_database_when_nothing_arrives():
    database = chain_database(relations=3, tuples_per_relation=4, domain_size=3, seed=2)
    expected = [_keys(ts) for ts in full_disjunction(database)]
    events = list(replay_stream(database, arrivals=[]))
    assert [
        _keys(e.tuple_set) for e in events if isinstance(e, ResultEvent)
    ] == expected


def test_partially_consumed_stream_still_reports_the_initial_build():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=4, seed=1)
    summary = StreamSummary()
    events = replay_stream(workload.database, workload.arrivals, summary=summary)
    next(events)  # consume one event, then abandon the stream
    events.close()
    assert summary.catalog_rebuilds == 1


def test_replay_rejects_bad_batch_size():
    database = chain_database(relations=2, tuples_per_relation=2, seed=1)
    with pytest.raises(ValueError, match="batch_size"):
        list(replay_stream(database, arrivals=[], batch_size=0))
