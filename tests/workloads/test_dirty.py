"""Tests for the dirty-data workload generator."""

import random

import pytest

from repro.core.approx_join import levenshtein
from repro.relational.nulls import is_null
from repro.workloads.dirty import clean_and_dirty_pair, corrupt_string, dirty_sources_database


class TestCorruptString:
    def test_zero_edits_is_identity(self):
        rng = random.Random(0)
        assert corrupt_string("canada", 0, rng) == "canada"

    def test_edit_distance_is_bounded_by_edit_count(self):
        rng = random.Random(1)
        for edits in (1, 2, 3):
            for _ in range(20):
                corrupted = corrupt_string("entity_007", edits, rng)
                assert levenshtein("entity_007", corrupted) <= 2 * edits

    def test_corrupting_empty_string_inserts_characters(self):
        rng = random.Random(2)
        assert corrupt_string("", 2, rng) != ""


class TestDirtySourcesDatabase:
    def test_shape_and_schema(self):
        database = dirty_sources_database(entities=10, sources=3, coverage=1.0, seed=0)
        assert len(database) == 3
        assert database.relation("Source1").attributes == ("Entity", "F1")
        assert all(len(relation) == 10 for relation in database)

    def test_sources_share_the_entity_attribute(self):
        database = dirty_sources_database(entities=5, sources=3, seed=0)
        assert database.is_connected()

    def test_reliability_is_attached_as_probability(self):
        database = dirty_sources_database(
            entities=5, sources=2, seed=0, source_reliability=[0.9, 0.6]
        )
        assert all(t.probability == 0.9 for t in database.relation("Source1"))
        assert all(t.probability == 0.6 for t in database.relation("Source2"))

    def test_typo_rate_zero_keeps_keys_clean(self):
        database = dirty_sources_database(
            entities=8, sources=2, coverage=1.0, typo_rate=0.0, null_rate=0.0, seed=0
        )
        for t in database.tuples():
            assert not is_null(t["Entity"])
            assert str(t["Entity"]).startswith("entity_")

    def test_typo_rate_one_corrupts_some_keys(self):
        clean = dirty_sources_database(
            entities=10, sources=2, coverage=1.0, typo_rate=0.0, null_rate=0.0, seed=5
        )
        dirty = dirty_sources_database(
            entities=10, sources=2, coverage=1.0, typo_rate=1.0, null_rate=0.0, seed=5
        )
        clean_keys = {t["Entity"] for t in clean.tuples()}
        dirty_keys = {t["Entity"] for t in dirty.tuples()}
        assert dirty_keys != clean_keys

    def test_coverage_controls_relation_size(self):
        database = dirty_sources_database(entities=20, sources=2, coverage=0.5, seed=1)
        assert all(len(relation) < 20 for relation in database)

    def test_determinism(self):
        first = dirty_sources_database(seed=3)
        second = dirty_sources_database(seed=3)
        assert [t.values for t in first.tuples()] == [t.values for t in second.tuples()]

    def test_rejects_single_source(self):
        with pytest.raises(ValueError):
            dirty_sources_database(sources=1)


class TestCleanAndDirtyPair:
    def test_pair_covers_the_same_entities(self):
        clean, dirty = clean_and_dirty_pair(entities=6, sources=2, typo_rate=0.5, seed=2)
        assert clean.relation_names == dirty.relation_names
        assert [len(r) for r in clean.relations] == [len(r) for r in dirty.relations]

    def test_clean_database_has_no_typos(self):
        clean, _ = clean_and_dirty_pair(entities=6, sources=2, seed=2)
        for t in clean.tuples():
            assert str(t["Entity"]).startswith("entity_")
