"""Tests for the batch (Kanza–Sagiv-style) baseline."""

from repro.baselines.batch import BatchFD, BatchStatistics, batch_full_disjunction
from repro.core.full_disjunction import full_disjunction
from repro.workloads.generators import chain_database
from repro.workloads.tourist import TABLE2_TUPLE_SETS

from tests.conftest import labels_of


class TestBatchFD:
    def test_produces_the_full_disjunction(self, tourist_db):
        results = BatchFD(tourist_db).compute()
        assert labels_of(results) == set(TABLE2_TUPLE_SETS)
        assert len(results) == 6

    def test_recomputes_each_result_once_per_member_tuple(self, tourist_db):
        algorithm = BatchFD(tourist_db)
        results = algorithm.compute()
        # Every result with j tuples is produced j times before deduplication:
        # Table 2 has 5 results of size 2 and 1 of size 3 -> 13 raw results.
        assert algorithm.statistics.raw_results == 13
        assert algorithm.statistics.duplicate_results == 13 - 6
        assert algorithm.statistics.final_results == len(results) == 6
        assert algorithm.statistics.dedup_comparisons > 0
        assert algorithm.statistics.elapsed_seconds >= 0.0

    def test_per_pass_statistics_are_kept(self, tourist_db):
        algorithm = BatchFD(tourist_db)
        algorithm.compute()
        assert len(algorithm.statistics.per_pass) == 3
        assert [s.results for s in algorithm.statistics.per_pass] == [6, 3, 4]

    def test_agrees_with_incremental_driver_on_synthetic_data(self):
        database = chain_database(relations=3, tuples_per_relation=6, domain_size=3, seed=9)
        assert labels_of(batch_full_disjunction(database)) == labels_of(
            full_disjunction(database)
        )

    def test_wrapper_fills_caller_statistics(self, tourist_db):
        statistics = BatchStatistics()
        batch_full_disjunction(tourist_db, statistics=statistics)
        assert statistics.raw_results == 13
        assert statistics.final_results == 6
        assert statistics.as_dict()["raw_results"] == 13

    def test_batch_does_more_work_than_the_incremental_driver(self, tourist_db):
        """The behavioural property the paper's comparison relies on."""
        from repro.core.incremental import FDStatistics

        incremental_stats = FDStatistics()
        full_disjunction(tourist_db, statistics=incremental_stats)
        batch = BatchFD(tourist_db)
        batch.compute()
        batch_results = sum(s.results for s in batch.statistics.per_pass)
        assert batch_results > incremental_stats.results or (
            batch.statistics.dedup_comparisons > 0
        )
