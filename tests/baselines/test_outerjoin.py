"""Tests for the outerjoin-sequence baseline of Rajaraman & Ullman [2]."""

import pytest

from repro.baselines.acyclicity import is_gamma_acyclic
from repro.baselines.outerjoin import exists_correct_outerjoin_order, outerjoin_sequence
from repro.core.full_disjunction import full_disjunction
from repro.workloads.generators import chain_database, cycle_database, star_database
from repro.workloads.tourist import TABLE2_TUPLE_SETS

from tests.conftest import labels_of


class TestOuterjoinSequence:
    def test_rejects_orders_that_are_not_permutations(self, tourist_db):
        with pytest.raises(ValueError):
            outerjoin_sequence(tourist_db, ["Climates", "Sites"])
        with pytest.raises(ValueError):
            outerjoin_sequence(tourist_db, ["Climates", "Sites", "Sites"])

    def test_results_are_maximal_jcc_tuple_sets(self, tourist_db):
        results = outerjoin_sequence(tourist_db)
        for first in results:
            assert first.is_jcc or len(first) == 1
            for second in results:
                if first != second:
                    assert not first.issubset(second)

    def test_some_order_reproduces_table2_on_the_tourist_schema(self, tourist_db):
        # Accommodations ⟗ Sites ⟗ Climates is one order that works.
        results = outerjoin_sequence(
            tourist_db, ["Accommodations", "Sites", "Climates"]
        )
        assert labels_of(results) == set(TABLE2_TUPLE_SETS)

    def test_a_bad_order_misses_results(self, tourist_db):
        # Joining Climates with Accommodations first loses {c2, s3}/{c2, s4}
        # combinations only if the intermediate padding forbids the later
        # match; the database order happens to be such a case for {c1, s2}.
        results = outerjoin_sequence(tourist_db, ["Climates", "Accommodations", "Sites"])
        assert labels_of(results) != set(TABLE2_TUPLE_SETS)

    def test_every_source_tuple_is_preserved(self, tourist_db):
        """Outerjoins never lose information: every tuple appears somewhere."""
        results = outerjoin_sequence(tourist_db)
        covered = set()
        for ts in results:
            covered |= ts.labels()
        assert covered == {t.label for t in tourist_db.tuples()}


class TestExistsCorrectOuterjoinOrder:
    def test_gamma_acyclic_schemas_admit_an_order(self, tourist_db):
        assert is_gamma_acyclic(tourist_db)
        order = exists_correct_outerjoin_order(tourist_db, full_disjunction(tourist_db))
        assert order is not None
        assert labels_of(outerjoin_sequence(tourist_db, order)) == set(TABLE2_TUPLE_SETS)

    def test_chain_schema_admits_an_order(self):
        database = chain_database(relations=3, tuples_per_relation=5, domain_size=3, seed=4)
        assert is_gamma_acyclic(database)
        reference = full_disjunction(database)
        assert exists_correct_outerjoin_order(database, reference) is not None

    def test_star_schema_admits_an_order(self):
        database = star_database(spokes=3, tuples_per_relation=3, hub_domain=2, seed=4)
        assert is_gamma_acyclic(database)
        reference = full_disjunction(database)
        assert exists_correct_outerjoin_order(database, reference) is not None

    def test_cyclic_schema_admits_no_order(self):
        """Beyond the γ-acyclic class the outerjoin approach fails — the gap
        the paper's algorithm closes."""
        database = cycle_database(relations=3, tuples_per_relation=4, domain_size=2, seed=6)
        assert not is_gamma_acyclic(database)
        reference = full_disjunction(database)
        assert exists_correct_outerjoin_order(database, reference) is None

    def test_max_orders_caps_the_search(self, tourist_db):
        reference = full_disjunction(tourist_db)
        assert exists_correct_outerjoin_order(tourist_db, reference, max_orders=0) is None
