"""Tests for the brute-force oracle."""

from repro.baselines.naive import (
    all_approx_tuple_sets,
    all_jcc_tuple_sets,
    naive_approx_full_disjunction,
    naive_full_disjunction,
)
from repro.core.approx_join import MinJoin
from repro.workloads.tourist import (
    TABLE2_TUPLE_SETS,
    noisy_tourist_similarity,
)

from tests.conftest import labels_of


class TestAllJccTupleSets:
    def test_every_enumerated_set_is_jcc(self, tourist_db):
        for ts in all_jcc_tuple_sets(tourist_db):
            assert ts.is_jcc

    def test_contains_singletons_and_paper_results(self, tourist_db):
        enumerated = labels_of(all_jcc_tuple_sets(tourist_db))
        assert frozenset({"c1"}) in enumerated
        assert frozenset({"a3"}) in enumerated
        for result in TABLE2_TUPLE_SETS:
            assert result in enumerated

    def test_does_not_contain_inconsistent_sets(self, tourist_db):
        enumerated = labels_of(all_jcc_tuple_sets(tourist_db))
        assert frozenset({"c2", "a1"}) not in enumerated
        assert frozenset({"c1", "c2"}) not in enumerated

    def test_definition_property_every_jcc_set_is_under_some_result(self, tourist_db):
        """Definition 2.1(iii) verified against the oracle's own enumeration."""
        results = naive_full_disjunction(tourist_db)
        for candidate in all_jcc_tuple_sets(tourist_db):
            assert any(candidate.issubset(result) for result in results)


class TestNaiveFullDisjunction:
    def test_reproduces_table2(self, tourist_db):
        assert labels_of(naive_full_disjunction(tourist_db)) == set(TABLE2_TUPLE_SETS)

    def test_no_redundancy(self, tourist_db):
        """Definition 2.1(i): no result is contained in another."""
        results = naive_full_disjunction(tourist_db)
        for first in results:
            for second in results:
                if first != second:
                    assert not first.issubset(second)


class TestNaiveApproximateOracle:
    def test_enumerated_sets_qualify(self, noisy_db):
        amin = MinJoin(noisy_tourist_similarity())
        for ts in all_approx_tuple_sets(noisy_db, amin, 0.5):
            assert amin(ts) >= 0.5
            assert ts.is_connected

    def test_maximality_of_approx_results(self, noisy_db):
        amin = MinJoin(noisy_tourist_similarity())
        results = naive_approx_full_disjunction(noisy_db, amin, 0.5)
        for first in results:
            for second in results:
                if first != second:
                    assert not first.issubset(second)
