"""Tests for α- and γ-acyclicity of schema hypergraphs."""

from repro.baselines.acyclicity import is_alpha_acyclic, is_gamma_acyclic, schema_hypergraph
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.workloads.generators import chain_database, cycle_database, star_database
from repro.workloads.tourist import tourist_database


class TestSchemaHypergraph:
    def test_from_database(self):
        hypergraph = schema_hypergraph(tourist_database())
        assert hypergraph["Climates"] == frozenset({"Country", "Climate"})
        assert len(hypergraph) == 3

    def test_from_schemas_and_attribute_lists(self):
        from_schemas = schema_hypergraph([Schema(["A", "B"]), Schema(["B", "C"])])
        from_lists = schema_hypergraph([["A", "B"], ["B", "C"]])
        assert list(from_schemas.values()) == list(from_lists.values())

    def test_from_relations(self):
        relations = [Relation("X", ["A", "B"]), Relation("Y", ["B"])]
        hypergraph = schema_hypergraph(relations)
        assert hypergraph["Y"] == frozenset({"B"})


class TestAlphaAcyclicity:
    def test_chain_and_star_are_alpha_acyclic(self):
        assert is_alpha_acyclic(chain_database(4, 2, seed=0))
        assert is_alpha_acyclic(star_database(4, 2, seed=0))
        assert is_alpha_acyclic(tourist_database())

    def test_cycle_is_not_alpha_acyclic(self):
        assert not is_alpha_acyclic(cycle_database(3, 2, seed=0))
        assert not is_alpha_acyclic([["A", "B"], ["B", "C"], ["C", "A"]])

    def test_triangle_with_covering_edge_is_alpha_acyclic(self):
        # Adding the edge {A, B, C} makes the classic triangle α-acyclic.
        assert is_alpha_acyclic([["A", "B"], ["B", "C"], ["C", "A"], ["A", "B", "C"]])


class TestGammaAcyclicity:
    def test_chain_and_star_are_gamma_acyclic(self):
        assert is_gamma_acyclic(chain_database(4, 2, seed=0))
        assert is_gamma_acyclic(star_database(4, 2, seed=0))

    def test_tourist_schema_is_gamma_acyclic(self):
        assert is_gamma_acyclic(tourist_database())

    def test_cycle_is_not_gamma_acyclic(self):
        assert not is_gamma_acyclic(cycle_database(3, 2, seed=0))
        assert not is_gamma_acyclic(cycle_database(4, 2, seed=0))

    def test_triangle_with_covering_edge_is_still_not_gamma_acyclic(self):
        # γ-acyclicity is strictly stronger than α-acyclicity: the covering
        # edge does not remove the γ-cycle through A, B, C.
        assert not is_gamma_acyclic([["A", "B"], ["B", "C"], ["C", "A"], ["A", "B", "C"]])

    def test_two_relations_are_always_gamma_acyclic(self):
        assert is_gamma_acyclic([["A", "B"], ["B", "C"]])

    def test_duplicate_schemas_do_not_create_cycles(self):
        assert is_gamma_acyclic([["A", "B"], ["A", "B"], ["B", "C"]])
