"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.relational.database import Database
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.workloads.tourist import noisy_tourist_database, tourist_database


@pytest.fixture
def tourist_db() -> Database:
    """The paper's Table 1 database."""
    return tourist_database()


@pytest.fixture
def noisy_db() -> Database:
    """The Fig. 4 variant with the misspelled ``Cannada`` and probabilities."""
    return noisy_tourist_database()


@pytest.fixture
def two_relation_db() -> Database:
    """A tiny two-relation database handy for operator tests."""
    left = Relation("Left", ["K", "A"], label_prefix="l")
    left.add(["k1", "a1"], label="l1")
    left.add(["k2", "a2"], label="l2")
    left.add([NULL, "a3"], label="l3")
    right = Relation("Right", ["K", "B"], label_prefix="r")
    right.add(["k1", "b1"], label="r1")
    right.add(["k3", "b3"], label="r2")
    return Database([left, right])


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #
#: Attribute pool shared by generated schemas; small so relations overlap often.
ATTRIBUTE_POOL = ["A", "B", "C", "D"]

#: Value domain; small so joins happen often.  ``None`` cells become nulls.
VALUE_DOMAIN = ["u", "v", "w", None]


@st.composite
def small_databases(
    draw,
    max_relations: int = 4,
    max_tuples: int = 4,
    require_connected: bool = True,
):
    """Generate small random databases suitable for oracle cross-checks.

    The schemas draw 1–3 attributes from a 4-attribute pool and the values
    come from a 3-value domain plus null, so join-consistent combinations,
    nulls and disconnected candidates all occur with useful frequency while
    the brute-force oracle stays fast.
    """
    n_relations = draw(st.integers(min_value=2, max_value=max_relations))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)

    for _ in range(50):
        database = Database()
        for index in range(n_relations):
            arity = rng.randint(1, 3)
            attributes = rng.sample(ATTRIBUTE_POOL, arity)
            relation = Relation(f"R{index + 1}", attributes, label_prefix=f"r{index + 1}_")
            for _ in range(rng.randint(1, max_tuples)):
                relation.add([rng.choice(VALUE_DOMAIN) for _ in attributes])
            database.add_relation(relation)
        if not require_connected or database.is_connected():
            return database
    # Fall back to a guaranteed-connected database rather than rejecting.
    database = Database()
    for index in range(n_relations):
        relation = Relation(f"R{index + 1}", ["A", f"X{index}"], label_prefix=f"r{index + 1}_")
        for _ in range(rng.randint(1, max_tuples)):
            relation.add([rng.choice(VALUE_DOMAIN), rng.choice(VALUE_DOMAIN)])
        database.add_relation(relation)
    return database


def labels_of(tuple_sets) -> set:
    """Frozenset-of-labels view of a collection of tuple sets (order-insensitive)."""
    return {ts.labels() for ts in tuple_sets}
