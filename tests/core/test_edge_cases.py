"""Edge-case behaviour of the full-disjunction algorithms.

These scenarios sit at the boundary of the definitions: a single relation,
empty relations, all-null tuples, duplicate rows, identical schemas and
disconnected databases.  The brute-force oracle provides the ground truth in
every case.
"""

import pytest

from repro.baselines.naive import naive_full_disjunction
from repro.core.full_disjunction import FullDisjunction, full_disjunction
from repro.core.incremental import incremental_fd
from repro.core.priority import priority_incremental_fd
from repro.core.ranking import MaxRanking
from repro.relational.database import Database
from repro.relational.nulls import NULL
from repro.relational.relation import Relation

from tests.conftest import labels_of


class TestSingleRelation:
    def test_fd_of_one_relation_is_its_singletons(self):
        relation = Relation.from_rows("R", ["A", "B"], [["x", 1], ["y", 2], ["x", 1]])
        database = Database([relation])
        results = full_disjunction(database)
        assert len(results) == 3
        assert all(len(ts) == 1 for ts in results)
        assert labels_of(results) == labels_of(naive_full_disjunction(database))

    def test_ranked_retrieval_over_one_relation(self):
        relation = Relation.from_rows("R", ["A"], [["x"], ["y"]])
        database = Database([relation])
        ranking = MaxRanking(lambda t: 1.0 if t.label == "r2" else 0.0)
        ranked = list(priority_incremental_fd(database, ranking))
        assert [ts.labels() for ts, _ in ranked] == [frozenset({"r2"}), frozenset({"r1"})]


class TestEmptyRelations:
    def test_empty_anchor_relation_yields_nothing(self):
        empty = Relation("Empty", ["A"])
        other = Relation.from_rows("Other", ["A"], [["x"]])
        database = Database([empty, other])
        assert list(incremental_fd(database, "Empty")) == []

    def test_driver_skips_empty_relations_but_keeps_the_rest(self):
        empty = Relation("Empty", ["A"])
        other = Relation.from_rows("Other", ["A", "B"], [["x", 1], ["y", 2]])
        database = Database([empty, other])
        results = full_disjunction(database)
        assert labels_of(results) == labels_of(naive_full_disjunction(database))
        assert len(results) == 2

    def test_all_relations_empty(self):
        database = Database([Relation("R1", ["A"]), Relation("R2", ["A"])])
        assert full_disjunction(database) == []


class TestNullHeavyData:
    def test_all_null_join_attribute_produces_only_singletons(self):
        left = Relation.from_rows("L", ["K", "A"], [[NULL, "a1"], [NULL, "a2"]])
        right = Relation.from_rows("R", ["K", "B"], [[NULL, "b1"]])
        database = Database([left, right])
        results = full_disjunction(database)
        assert all(len(ts) == 1 for ts in results)
        assert len(results) == 3
        assert labels_of(results) == labels_of(naive_full_disjunction(database))

    def test_partially_null_rows_combine_where_possible(self):
        left = Relation.from_rows("L", ["K", "A"], [["k", "a1"], [NULL, "a2"]])
        right = Relation.from_rows("R", ["K", "B"], [["k", "b1"]])
        database = Database([left, right])
        results = full_disjunction(database)
        assert labels_of(results) == {
            frozenset({"l1", "r1"}),
            frozenset({"l2"}),
        }


class TestDuplicateRowsAndIdenticalSchemas:
    def test_duplicate_rows_are_distinct_tuples(self):
        left = Relation.from_rows("L", ["K"], [["k"], ["k"]])
        right = Relation.from_rows("R", ["K", "B"], [["k", "b"]])
        database = Database([left, right])
        results = full_disjunction(database)
        # Each duplicate combines with the right-hand tuple separately.
        assert labels_of(results) == {
            frozenset({"l1", "r1"}),
            frozenset({"l2", "r1"}),
        }
        assert labels_of(results) == labels_of(naive_full_disjunction(database))

    def test_two_relations_with_identical_schemas(self):
        first = Relation.from_rows("First", ["A", "B"], [["x", 1], ["y", 2]])
        second = Relation.from_rows("Second", ["A", "B"], [["x", 1], ["z", 3]])
        database = Database([first, second])
        results = full_disjunction(database)
        assert labels_of(results) == labels_of(naive_full_disjunction(database))
        assert frozenset({"f1", "s1"}) in labels_of(results)


class TestDisconnectedDatabase:
    def test_results_never_span_components(self):
        left = Relation.from_rows("L", ["A"], [["x"]])
        right = Relation.from_rows("R", ["B"], [["y"]])
        database = Database([left, right])
        assert not database.is_connected()
        results = full_disjunction(database)
        assert labels_of(results) == {frozenset({"l1"}), frozenset({"r1"})}
        assert labels_of(results) == labels_of(naive_full_disjunction(database))

    def test_two_components_each_combine_internally(self):
        a1 = Relation("A1", ["K", "X"], label_prefix="p")
        a1.add(["k", 1])
        a2 = Relation("A2", ["K", "Y"], label_prefix="q")
        a2.add(["k", 2])
        b1 = Relation("B1", ["M"], label_prefix="b")
        b1.add(["m"])
        database = Database([a1, a2, b1])
        results = full_disjunction(database)
        assert labels_of(results) == {frozenset({"p1", "q1"}), frozenset({"b1"})}
        assert labels_of(results) == labels_of(naive_full_disjunction(database))


class TestFacadeOnEdgeCases:
    def test_pretty_on_singleton_only_result(self):
        database = Database([Relation.from_rows("R", ["A"], [["x"]])])
        rendered = FullDisjunction(database).pretty()
        assert "{r1}" in rendered

    def test_first_k_on_tiny_database(self):
        database = Database([Relation.from_rows("R", ["A"], [["x"], ["y"]])])
        assert len(FullDisjunction(database).first(5)) == 2
