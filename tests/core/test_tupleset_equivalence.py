"""Randomized cross-checks: bitset (interned) representation vs. the reference.

The bitset ``TupleSet`` fast paths and the indexed store layer must be
observationally identical to the retained reference implementations — the
uninterned dictionary/BFS paths of :class:`repro.core.tupleset.TupleSet` and
the plain containers of :mod:`repro.core.pools`.  These tests generate random
workloads and compare the two side by side, operation by operation and
end to end.
"""

from __future__ import annotations

import random

import pytest

from repro.core.incremental import get_next_result
from repro.core.full_disjunction import full_disjunction
from repro.core.pools import (
    CompleteStore as ReferenceCompleteStore,
    ListIncompletePool as ReferenceIncompletePool,
)
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet
from repro.workloads.generators import chain_database, random_database, star_database
from repro.workloads.tourist import tourist_database


def _workloads():
    yield "tourist", tourist_database()
    yield "chain", chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    )
    yield "star", star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=11)
    for seed in (0, 1, 2):
        yield f"random-{seed}", random_database(
            relations=3,
            attributes=5,
            arity=3,
            tuples_per_relation=4,
            domain_size=2,
            null_rate=0.25,
            seed=seed,
        )


WORKLOADS = list(_workloads())
WORKLOAD_IDS = [name for name, _ in WORKLOADS]


def _random_subset(rng, all_tuples, max_size=5):
    size = rng.randint(0, min(len(all_tuples), max_size))
    return rng.sample(all_tuples, size)


def _random_jcc_set(rng, all_tuples):
    """Grow a JCC set greedily on the reference (uninterned) path."""
    current = TupleSet.singleton(rng.choice(all_tuples))
    for t in rng.sample(all_tuples, len(all_tuples)):
        if rng.random() < 0.6 and current.can_absorb(t):
            current = current.with_tuple(t)
    return current


@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_predicates_match_reference_on_random_subsets(name, database):
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(42)
    for _ in range(120):
        members = _random_subset(rng, all_tuples)
        reference = TupleSet(members)
        interned = TupleSet(members, catalog=catalog)
        assert interned.is_interned
        assert interned == reference
        assert interned.is_join_consistent == reference.is_join_consistent
        assert interned.is_connected == reference.is_connected
        assert interned.is_jcc == reference.is_jcc


@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_subset_relations_match_reference(name, database):
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(7)
    for _ in range(80):
        first = _random_subset(rng, all_tuples)
        second = _random_subset(rng, all_tuples)
        if rng.random() < 0.3:
            second = first + second  # force genuine subset pairs regularly
        plain_a, plain_b = TupleSet(first), TupleSet(second)
        bits_a = TupleSet(first, catalog=catalog)
        bits_b = TupleSet(second, catalog=catalog)
        assert bits_a.issubset(bits_b) == plain_a.issubset(plain_b)
        assert bits_a.issuperset(bits_b) == plain_a.issuperset(plain_b)
        # Mixed representations must agree too (they fall back to tuples).
        assert bits_a.issubset(plain_b) == plain_a.issubset(plain_b)


@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_inner_loop_tests_match_reference_on_jcc_sets(name, database):
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(99)
    jcc_sets = [_random_jcc_set(rng, all_tuples) for _ in range(25)]
    interned_sets = [TupleSet(ts.tuples, catalog=catalog) for ts in jcc_sets]

    for reference, interned in zip(jcc_sets, interned_sets):
        for t in all_tuples:
            assert interned.can_absorb(t) == reference.can_absorb(t), (
                f"can_absorb diverges on {t!r} against {reference!r}"
            )
            assert (
                interned.maximal_jcc_subset_with(t).tuples
                == reference.maximal_jcc_subset_with(t).tuples
            ), f"maximal_jcc_subset_with diverges on {t!r} against {reference!r}"

    for i, (ref_a, bits_a) in enumerate(zip(jcc_sets, interned_sets)):
        for ref_b, bits_b in zip(jcc_sets[i:], interned_sets[i:]):
            assert bits_a.union_is_jcc(bits_b) == ref_a.union_is_jcc(ref_b), (
                f"union_is_jcc diverges on {ref_a!r} vs {ref_b!r}"
            )


def _reference_full_disjunction(database):
    """The FD(R) driver run entirely on the reference pools and uninterned sets."""
    results = []
    for index, relation in enumerate(database.relations):
        earlier = {r.name for r in database.relations[:index]}
        scanner = TupleScanner(database)
        incomplete = ReferenceIncompletePool(relation.name)
        for t in relation:
            incomplete.add(TupleSet.singleton(t))
        complete = ReferenceCompleteStore(relation.name)
        while incomplete:
            result = get_next_result(
                database, relation.name, incomplete, complete, scanner
            )
            complete.add(result)
            if any(result.contains_tuple_from(name) for name in earlier):
                continue
            results.append(result)
    return results


@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
@pytest.mark.parametrize("use_index", [False, True], ids=["plain", "indexed"])
def test_engine_output_matches_reference_run(name, database, use_index):
    reference = {ts.tuples for ts in _reference_full_disjunction(database)}
    engine = {ts.tuples for ts in full_disjunction(database, use_index=use_index)}
    assert engine == reference


# --------------------------------------------------------------------- #
# four-way suite: reference (dict/BFS) vs big-int vs packed kernels,
# the packed kernel on both mirror backings (RAM arrays and mapped file)
# --------------------------------------------------------------------- #
from repro.core.kernels import numpy_available, use_kernel  # noqa: E402
from repro.core.store import CompleteStore  # noqa: E402

#: (kernel, mirror backing) pairs; every mode must agree with the
#: uninterned dict/BFS reference the tests below compute inline.
KERNEL_MODES = [("bigint", "ram")]
if numpy_available():
    KERNEL_MODES += [("packed", "ram"), ("packed", "mmap")]
KERNEL_MODE_IDS = [f"{kernel}-{backing}" for kernel, backing in KERNEL_MODES]

#: Deterministic builders so mmap modes get a private database instance
#: (its catalog mirror lives in a file under the test's tmp_path).
WORKLOAD_FACTORIES = {
    "tourist": tourist_database,
    "chain": lambda: chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    ),
    "star": lambda: star_database(
        spokes=3, tuples_per_relation=4, hub_domain=2, seed=11
    ),
}
for _seed in (0, 1, 2):
    WORKLOAD_FACTORIES[f"random-{_seed}"] = lambda _seed=_seed: random_database(
        relations=3,
        attributes=5,
        arity=3,
        tuples_per_relation=4,
        domain_size=2,
        null_rate=0.25,
        seed=_seed,
    )


def _mode_database(name, backing, tmp_path):
    database = WORKLOAD_FACTORIES[name]()
    if backing == "mmap":
        mirror = database.catalog().save_mirror(str(tmp_path / f"{name}.rpmc"))
        assert mirror.backing == "mmap"
    return database



def _vectorized(kernel):
    """Zero the packed kernel's small-batch cutoffs so the vectorized
    paths run even on these small workloads (below them the kernel
    delegates to the big-int reference)."""
    for attr in (
        "MIN_GROUP", "MIN_WAITING", "MIN_TOMBSTONED", "MIN_DEAD", "MIN_EXTEND",
    ):
        if hasattr(kernel, attr):
            setattr(kernel, attr, 0)
    return kernel


def _sorted(tuples):
    return sorted(tuples, key=lambda t: (t.relation_name, t.label))


@pytest.mark.parametrize("kernel,backing", KERNEL_MODES, ids=KERNEL_MODE_IDS)
@pytest.mark.parametrize("name", WORKLOAD_IDS)
def test_inner_loop_tests_match_reference_under_every_kernel(
    name, kernel, backing, tmp_path
):
    """union_is_jcc / can_absorb / maximal_jcc_subset_with, four ways.

    The uninterned dict/BFS reference, the interned big-int fast path and
    the packed kernel's batch forms — on RAM and mapped-file mirrors —
    must all give the same answer on the same random JCC sets.
    """
    database = _mode_database(name, backing, tmp_path)
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(271)
    jcc_sets = [_random_jcc_set(rng, all_tuples) for _ in range(12)]
    interned = [TupleSet(ts.tuples, catalog=catalog) for ts in jcc_sets]
    with use_kernel(kernel) as active:
        _vectorized(active)
        for reference, bits in zip(jcc_sets, interned):
            gids = [catalog.id_of(t) for t in all_tuples]
            absorb = active.batch_can_absorb(
                catalog, bits._id_mask, bits._relation_mask, gids
            )
            for t, gid, flag in zip(all_tuples, gids, absorb):
                if t not in reference:
                    assert reference.can_absorb(t) == bool(flag)
                assert (
                    bits.maximal_jcc_subset_with(t).tuples
                    == reference.maximal_jcc_subset_with(t).tuples
                )
        for candidate_ref, candidate in zip(jcc_sets, interned):
            expected = next(
                (
                    j
                    for j, waiting in enumerate(jcc_sets)
                    if waiting.union_is_jcc(candidate_ref)
                ),
                -1,
            )
            assert active.first_jcc_union(interned, candidate) == expected


@pytest.mark.parametrize("kernel,backing", KERNEL_MODES, ids=KERNEL_MODE_IDS)
@pytest.mark.parametrize("name", WORKLOAD_IDS)
def test_contains_superset_batch_matches_reference_under_every_kernel(
    name, kernel, backing, tmp_path
):
    database = _mode_database(name, backing, tmp_path)
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(137)
    with use_kernel(kernel) as active:
        _vectorized(active)
        reference_store = ReferenceCompleteStore(None)
        store = CompleteStore(anchor_relation=None, use_index=True)
        stored = [
            TupleSet(_random_jcc_set(rng, all_tuples).tuples, catalog=catalog)
            for _ in range(10)
        ]
        for ts in stored:
            reference_store.add(TupleSet(ts.tuples))
            store.add(ts)
        for _ in range(25):
            donor = rng.choice(stored)
            members = rng.sample(_sorted(donor.tuples), rng.randint(1, len(donor)))
            anchor = members[0]
            probes = [
                TupleSet(members, catalog=catalog),
                TupleSet(
                    _random_jcc_set(rng, all_tuples).with_tuple(anchor).tuples
                    if rng.random() < 0.5
                    else members,
                    catalog=catalog,
                ),
            ]
            expected = [
                reference_store.contains_superset(TupleSet(p.tuples)) for p in probes
            ]
            assert store.contains_superset_batch(probes, anchor=anchor) == expected


@pytest.mark.parametrize("kernel,backing", KERNEL_MODES, ids=KERNEL_MODE_IDS)
def test_retraction_matches_reference_under_every_kernel(kernel, backing, tmp_path):
    """remove_tuple / update_tuple sweeps, four ways.

    After each mutation the kernel-backed tombstone and dead-tuple sweeps
    must flag exactly the sets a per-member Python scan flags — including
    when the tombstone bits live in a mapped mirror file.
    """
    database = chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=41
    )
    if backing == "mmap":
        mirror = database.catalog().save_mirror(str(tmp_path / "retract.rpmc"))
        assert mirror.backing == "mmap"
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(43)
    sets = [
        TupleSet(_random_jcc_set(rng, all_tuples).tuples, catalog=catalog)
        for _ in range(10)
    ]
    with use_kernel(kernel) as active:
        _vectorized(active)
        for step in range(8):
            live = [t for t in database.tuples() if not catalog.is_tombstoned(t)]
            victim = rng.choice(live)
            if step % 2:
                database.update_tuple(
                    victim.relation_name,
                    victim.label,
                    [rng.choice([1, 2, 3]) for _ in victim.values],
                )
            else:
                database.remove_tuple(victim.relation_name, victim.label)
            dead = {t for t in all_tuples if catalog.is_tombstoned(t)}
            expected_tombstoned = [
                any(catalog.is_tombstoned(t) for t in ts.tuples) for ts in sets
            ]
            expected_dead = [any(t in dead for t in ts.tuples) for ts in sets]
            assert active.batch_contains_tombstoned(sets, catalog) == expected_tombstoned
            assert active.batch_contains_dead(sets, dead) == expected_dead


def test_union_across_two_catalogs_interns_in_the_wider_one():
    """Regression: ``a.union(b)`` must also try ``b``'s catalog.

    ``a`` is interned in a catalog snapshot taken *before* new tuples
    arrived; ``b`` is interned in the current catalog, which can describe
    both operands.  The union used to try only ``a``'s catalog, silently
    de-interning the result (and with it every downstream bitset fast
    path).
    """
    database = chain_database(
        relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=19
    )
    old_catalog = database.catalog()
    old_tuple = next(iter(database.relations[0]))
    a = TupleSet.singleton(old_tuple).attach_catalog(old_catalog)
    assert a.is_interned

    # Add behind the database's back: the cached catalog goes stale and the
    # next catalog() call is a full rebuild — a genuinely *different*
    # snapshot, unlike add_tuple's in-place extension.
    fresh = database.relations[1].add(
        [1 for _ in database.relations[1].schema], label="late"
    )
    new_catalog = database.catalog()
    assert new_catalog is not old_catalog
    b = TupleSet.singleton(fresh).attach_catalog(new_catalog)
    assert b.is_interned
    assert new_catalog.id_of(fresh) is not None
    assert old_catalog.id_of(fresh) is None  # a's catalog cannot describe b

    for union in (a.union(b), b.union(a)):
        assert union.tuples == a.tuples | b.tuples
        assert union.is_interned, "union fell off the bitset fast path"
        assert union._catalog is new_catalog


def test_tourist_table2_output_is_unchanged():
    """The paper's Table 2 workload: the six known result sets, exactly."""
    database = tourist_database()
    expected = {
        frozenset({"c1", "a1"}),
        frozenset({"c1", "a2", "s1"}),
        frozenset({"c1", "s2"}),
        frozenset({"c2", "s3"}),
        frozenset({"c2", "s4"}),
        frozenset({"c3", "a3"}),
    }
    for use_index in (False, True):
        produced = {ts.labels() for ts in full_disjunction(database, use_index=use_index)}
        assert produced == expected
