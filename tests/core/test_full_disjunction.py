"""Tests for the ``FD(R)`` driver and the :class:`FullDisjunction` facade."""

import pytest

from repro.core.full_disjunction import (
    FullDisjunction,
    first_k,
    full_disjunction,
    full_disjunction_sets,
)
from repro.core.incremental import FDStatistics
from repro.relational.nulls import is_null
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import TABLE2_TUPLE_SETS, table2_padded_rows
from repro.baselines.naive import naive_full_disjunction

from tests.conftest import labels_of


class TestFullDisjunctionDriver:
    def test_reproduces_table2(self, tourist_db):
        assert labels_of(full_disjunction(tourist_db)) == set(TABLE2_TUPLE_SETS)

    def test_no_duplicates_across_passes(self, tourist_db):
        results = full_disjunction(tourist_db)
        assert len(results) == len(set(results)) == 6

    def test_unknown_strategy_raises(self, tourist_db):
        with pytest.raises(ValueError):
            full_disjunction(tourist_db, initialization="bogus")

    @pytest.mark.parametrize("use_index", [False, True])
    @pytest.mark.parametrize(
        "initialization", ["singletons", "previous-results", "reduced-previous"]
    )
    def test_all_configurations_agree(self, tourist_db, use_index, initialization):
        results = full_disjunction(
            tourist_db, use_index=use_index, initialization=initialization
        )
        assert labels_of(results) == set(TABLE2_TUPLE_SETS)
        assert len(results) == 6

    def test_matches_oracle_on_chain_workload(self):
        database = chain_database(relations=3, tuples_per_relation=6, domain_size=3, seed=2)
        assert labels_of(full_disjunction(database)) == labels_of(
            naive_full_disjunction(database)
        )

    def test_matches_oracle_on_star_workload(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=3)
        assert labels_of(full_disjunction(database)) == labels_of(
            naive_full_disjunction(database)
        )

    def test_statistics_accumulate_across_passes(self, tourist_db):
        statistics = FDStatistics()
        full_disjunction(tourist_db, statistics=statistics)
        # Every pass contributes its results (6 + 3 + 4 for the three anchors).
        assert statistics.results == 13
        assert statistics.tuple_reads > 0

    def test_block_size_does_not_change_results(self, tourist_db):
        assert labels_of(full_disjunction(tourist_db, block_size=2)) == set(
            TABLE2_TUPLE_SETS
        )


class TestStreamingAndFirstK:
    def test_first_k_returns_k_distinct_results(self, tourist_db):
        results = first_k(tourist_db, 3)
        assert len(results) == 3
        assert len(set(results)) == 3
        assert labels_of(results) <= set(TABLE2_TUPLE_SETS)

    def test_first_k_larger_than_result_returns_everything(self, tourist_db):
        assert len(first_k(tourist_db, 99)) == 6

    def test_first_zero(self, tourist_db):
        assert first_k(tourist_db, 0) == []

    def test_first_k_negative_raises(self, tourist_db):
        with pytest.raises(ValueError):
            first_k(tourist_db, -1)

    def test_generator_is_lazy(self, tourist_db):
        generator = full_disjunction_sets(tourist_db)
        first = next(generator)
        assert first.labels() in set(TABLE2_TUPLE_SETS)
        generator.close()

    def test_first_k_on_exponential_star_is_cheap(self):
        # The full result of a 5-spoke star is large; asking for 5 members
        # must not require materialising it.
        database = star_database(spokes=5, tuples_per_relation=6, hub_domain=2, seed=0)
        statistics = FDStatistics()
        results = []
        for result in full_disjunction_sets(database, statistics=statistics):
            results.append(result)
            if len(results) == 5:
                break
        assert len(results) == 5
        assert statistics.results <= 6  # barely more work than the answers asked for


class TestFullDisjunctionFacade:
    def test_compute_is_cached(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        first = fd.compute()
        second = fd.compute()
        assert first == second
        assert first is not second  # defensive copy

    def test_iteration_streams(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        assert labels_of(list(iter(fd))) == set(TABLE2_TUPLE_SETS)

    def test_first(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        assert len(fd.first(2)) == 2

    def test_result_schema_covers_all_attributes(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        assert set(fd.result_schema().attributes) == {
            "Country",
            "Climate",
            "City",
            "Hotel",
            "Stars",
            "Site",
        }

    def test_padded_rows_match_table2(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        rows = fd.padded_rows()
        results = fd.compute()
        by_labels = {
            results[index].labels(): rows[index] for index in range(len(results))
        }
        for expected in table2_padded_rows():
            row = by_labels[expected["labels"]]
            for attribute in ("Country", "City", "Climate", "Hotel", "Stars", "Site"):
                value = expected[attribute]
                if is_null(value):
                    assert is_null(row[attribute])
                else:
                    assert row[attribute] == value

    def test_to_relation(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        relation = fd.to_relation()
        assert len(relation) == 6
        assert set(relation.schema.attributes) == set(fd.result_schema().attributes)

    def test_pretty_renders_all_tuple_sets(self, tourist_db):
        rendered = FullDisjunction(tourist_db).pretty()
        assert "{a1, c1}" in rendered
        assert "Mount Logan" in rendered
        assert "⊥" in rendered

    def test_database_property(self, tourist_db):
        assert FullDisjunction(tourist_db).database is tourist_db
