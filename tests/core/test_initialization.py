"""Tests for the Section 7 initialization strategies of ``Incomplete``."""

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.initialization import (
    STRATEGIES,
    RestrictedScanner,
    covered_tuples,
    earlier_relations,
    initial_sets,
    previous_results_sets,
    reduced_previous_sets,
    singleton_sets,
)
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet
from repro.workloads.generators import chain_database, cycle_database
from repro.baselines.naive import naive_full_disjunction

from tests.conftest import labels_of


@pytest.fixture
def previous_results(tourist_db):
    """The results of the first pass (anchor Climates), i.e. all of Table 2."""
    return full_disjunction(tourist_db)


class TestSingletonStrategy:
    def test_one_singleton_per_anchor_tuple(self, tourist_db):
        sets = singleton_sets(tourist_db, "Sites")
        assert len(sets) == 4
        assert all(len(ts) == 1 for ts in sets)
        assert {next(iter(ts)).label for ts in sets} == {"s1", "s2", "s3", "s4"}


class TestPreviousResultsStrategy:
    def test_reuses_previous_results_and_covers_all_anchor_tuples(
        self, tourist_db, previous_results
    ):
        sets = previous_results_sets(tourist_db, "Accommodations", previous_results)
        anchored = [ts for ts in sets if len(ts) > 1]
        assert all(ts.contains_tuple_from("Accommodations") for ts in anchored)
        covered = {ts.tuple_from("Accommodations").label for ts in sets if ts.tuple_from("Accommodations")}
        assert covered == {"a1", "a2", "a3"}

    def test_uncovered_tuples_get_singletons(self, tourist_db):
        # With no previous results every anchor tuple gets a singleton.
        sets = previous_results_sets(tourist_db, "Sites", [])
        assert len(sets) == 4 and all(len(ts) == 1 for ts in sets)

    def test_remark_4_5_condition_no_two_seeds_under_one_result(
        self, tourist_db, previous_results
    ):
        sets = previous_results_sets(tourist_db, "Sites", previous_results)
        for result in previous_results:
            under = [ts for ts in sets if ts.issubset(result)]
            assert len(under) <= 1


class TestReducedPreviousStrategy:
    def test_seeds_are_jcc_and_anchored(self, tourist_db, previous_results):
        sets = reduced_previous_sets(tourist_db, "Sites", previous_results)
        assert sets, "the reduced strategy must produce seeds"
        for ts in sets:
            assert ts.is_jcc
            assert ts.contains_tuple_from("Sites")

    def test_no_seed_contains_a_tuple_of_an_earlier_relation(
        self, tourist_db, previous_results
    ):
        sets = reduced_previous_sets(tourist_db, "Sites", previous_results)
        for ts in sets:
            assert not ts.contains_tuple_from("Climates")
            assert not ts.contains_tuple_from("Accommodations")

    def test_no_seed_is_contained_in_another(self, tourist_db, previous_results):
        sets = reduced_previous_sets(tourist_db, "Sites", previous_results)
        for first in sets:
            for second in sets:
                if first != second:
                    assert not first.issubset(second)

    def test_every_anchor_tuple_is_covered(self, tourist_db, previous_results):
        sets = reduced_previous_sets(tourist_db, "Sites", previous_results)
        covered = set()
        for ts in sets:
            member = ts.tuple_from("Sites")
            if member is not None:
                covered.add(member.label)
        assert covered == {"s1", "s2", "s3", "s4"}


class TestDispatchAndHelpers:
    def test_initial_sets_dispatch(self, tourist_db):
        for strategy in STRATEGIES:
            sets = initial_sets(strategy, tourist_db, "Climates", [])
            assert sets and all(isinstance(ts, TupleSet) for ts in sets)

    def test_unknown_strategy_raises(self, tourist_db):
        with pytest.raises(ValueError):
            initial_sets("bogus", tourist_db, "Climates", [])

    def test_covered_tuples(self, tourist_db, previous_results):
        covered = covered_tuples(previous_results, "Accommodations")
        assert {t.label for t in covered} == {"a1", "a2", "a3"}

    def test_earlier_relations(self, tourist_db):
        assert earlier_relations(tourist_db, "Climates") == set()
        assert earlier_relations(tourist_db, "Sites") == {"Climates", "Accommodations"}

    def test_restricted_scanner_skips_relations(self, tourist_db):
        scanner = RestrictedScanner(TupleScanner(tourist_db), {"Climates"})
        labels = [t.label for t in scanner.scan()]
        assert "c1" not in labels and "a1" in labels
        assert scanner.passes == 1
        assert scanner.tuple_reads == 7
        assert scanner.database is tourist_db
        assert scanner.cost_summary()["passes"] == 1


class TestStrategiesProduceTheSameFullDisjunction:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_on_chain_workload(self, strategy):
        database = chain_database(relations=3, tuples_per_relation=6, domain_size=3, seed=5)
        expected = labels_of(naive_full_disjunction(database))
        produced = full_disjunction(database, initialization=strategy)
        assert labels_of(produced) == expected
        assert len(produced) == len(expected)  # no duplicates either

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_on_cyclic_workload(self, strategy):
        database = cycle_database(relations=3, tuples_per_relation=5, domain_size=2, seed=7)
        expected = labels_of(naive_full_disjunction(database))
        produced = full_disjunction(database, initialization=strategy)
        assert labels_of(produced) == expected
        assert len(produced) == len(expected)
