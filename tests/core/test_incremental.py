"""Tests for ``IncrementalFD`` and ``GetNextResult`` (Figs. 1–2)."""

import pytest

from repro.core.incremental import (
    FDStatistics,
    get_next_result,
    incremental_fd,
    maximally_extend,
    resolve_anchor,
)
from repro.core.pools import CompleteStore, ListIncompletePool
from repro.core.scanner import TupleScanner
from repro.core.tupleset import TupleSet
from repro.relational.errors import DatabaseError
from repro.workloads.tourist import TABLE2_TUPLE_SETS


def labels(results):
    return {ts.labels() for ts in results}


#: FD_i of the tourist example, per anchor relation (derived from Table 2).
FD_BY_ANCHOR = {
    "Climates": set(TABLE2_TUPLE_SETS),
    "Accommodations": {
        frozenset({"c1", "a1"}),
        frozenset({"c1", "a2", "s1"}),
        frozenset({"c3", "a3"}),
    },
    "Sites": {
        frozenset({"c1", "a2", "s1"}),
        frozenset({"c1", "s2"}),
        frozenset({"c2", "s3"}),
        frozenset({"c2", "s4"}),
    },
}


class TestResolveAnchor:
    def test_accepts_name_and_index(self, tourist_db):
        assert resolve_anchor(tourist_db, "Sites") == "Sites"
        assert resolve_anchor(tourist_db, 0) == "Climates"

    def test_unknown_name_raises(self, tourist_db):
        with pytest.raises(DatabaseError):
            resolve_anchor(tourist_db, "Nope")

    def test_out_of_range_index_raises(self, tourist_db):
        with pytest.raises(DatabaseError):
            resolve_anchor(tourist_db, 9)


class TestMaximallyExtend:
    def test_extends_to_a_maximal_jcc_set(self, tourist_db):
        scanner = TupleScanner(tourist_db)
        seed = TupleSet.singleton(tourist_db.tuple_by_label("c1"))
        extended = maximally_extend(seed, scanner)
        assert extended.is_jcc
        for t in tourist_db.tuples():
            if t not in extended:
                assert not extended.can_absorb(t)

    def test_extension_of_already_maximal_set_is_identity(self, tourist_db):
        scanner = TupleScanner(tourist_db)
        maximal = TupleSet(
            tourist_db.tuple_by_label(label) for label in ("c1", "a2", "s1")
        )
        assert maximally_extend(maximal, scanner) == maximal

    def test_counts_extension_passes(self, tourist_db):
        statistics = FDStatistics()
        scanner = TupleScanner(tourist_db)
        maximally_extend(
            TupleSet.singleton(tourist_db.tuple_by_label("c3")), scanner, statistics
        )
        assert statistics.extension_passes >= 2  # one productive pass + the fixpoint pass


class TestGetNextResult:
    def test_produces_a_member_of_fd_i(self, tourist_db):
        incomplete = ListIncompletePool("Climates")
        complete = CompleteStore("Climates")
        for t in tourist_db.relation("Climates"):
            incomplete.add(TupleSet.singleton(t))
        result = get_next_result(tourist_db, "Climates", incomplete, complete)
        assert result.labels() in FD_BY_ANCHOR["Climates"]

    def test_feeds_incomplete_with_anchored_candidates_only(self, tourist_db):
        incomplete = ListIncompletePool("Climates")
        complete = CompleteStore("Climates")
        for t in tourist_db.relation("Climates"):
            incomplete.add(TupleSet.singleton(t))
        get_next_result(tourist_db, "Climates", incomplete, complete)
        for waiting in incomplete:
            assert waiting.contains_tuple_from("Climates")
            assert waiting.is_jcc


class TestIncrementalFD:
    @pytest.mark.parametrize("anchor", ["Climates", "Accommodations", "Sites"])
    def test_computes_fd_i_exactly(self, tourist_db, anchor):
        results = list(incremental_fd(tourist_db, anchor))
        assert labels(results) == FD_BY_ANCHOR[anchor]

    @pytest.mark.parametrize("anchor", ["Climates", "Accommodations", "Sites"])
    def test_no_result_is_produced_twice(self, tourist_db, anchor):
        results = list(incremental_fd(tourist_db, anchor))
        assert len(results) == len(set(results))

    def test_every_result_is_maximal_jcc(self, tourist_db):
        for result in incremental_fd(tourist_db, "Sites"):
            assert result.is_jcc
            for t in tourist_db.tuples():
                if t not in result:
                    assert not result.can_absorb(t)

    def test_anchor_may_be_an_index(self, tourist_db):
        assert labels(incremental_fd(tourist_db, 2)) == FD_BY_ANCHOR["Sites"]

    def test_results_are_streamed_lazily(self, tourist_db):
        generator = incremental_fd(tourist_db, "Climates")
        first = next(generator)
        assert first.labels() == frozenset({"c1", "a1"})
        generator.close()  # abandoning the generator is fine

    def test_use_index_does_not_change_results(self, tourist_db):
        plain = labels(incremental_fd(tourist_db, "Climates", use_index=False))
        indexed = labels(incremental_fd(tourist_db, "Climates", use_index=True))
        assert plain == indexed

    def test_custom_initialization(self, tourist_db):
        # Seeding with the full singleton list explicitly behaves like the default.
        initial = [TupleSet.singleton(t) for t in tourist_db.relation("Sites")]
        results = labels(incremental_fd(tourist_db, "Sites", initial=initial))
        assert results == FD_BY_ANCHOR["Sites"]

    def test_statistics_are_populated(self, tourist_db):
        statistics = FDStatistics()
        results = list(incremental_fd(tourist_db, "Climates", statistics=statistics))
        assert statistics.results == len(results) == 6
        assert statistics.candidates_generated > 0
        assert statistics.tuple_reads > 0
        assert statistics.scan_passes > 0
        as_dict = statistics.as_dict()
        assert as_dict["results"] == 6

    def test_statistics_merge_accumulates(self):
        first = FDStatistics(results=2, tuple_reads=10)
        second = FDStatistics(results=3, tuple_reads=5, block_reads=7)
        first.merge(second)
        assert first.results == 5
        assert first.tuple_reads == 15
        assert first.block_reads == 7

    def test_callbacks_fire(self, tourist_db):
        seen = {"init": 0, "iterations": []}

        def on_initialized(incomplete, complete):
            seen["init"] += 1
            assert len(incomplete) == 3 and len(complete) == 0

        def on_iteration(iteration, result, incomplete, complete):
            seen["iterations"].append((iteration, result.labels()))
            assert result in complete

        list(
            incremental_fd(
                tourist_db,
                "Climates",
                on_initialized=on_initialized,
                on_iteration=on_iteration,
            )
        )
        assert seen["init"] == 1
        assert [i for i, _ in seen["iterations"]] == [1, 2, 3, 4, 5, 6]

    def test_number_of_iterations_equals_number_of_results(self, tourist_db):
        """Theorem 4.6: each loop iteration produces exactly one new result."""
        statistics = FDStatistics()
        results = list(incremental_fd(tourist_db, "Climates", statistics=statistics))
        assert len(results) == 6
        assert statistics.results == 6

    def test_external_complete_store_is_respected(self, tourist_db):
        complete = CompleteStore("Climates")
        # Pretend {c1, a1} was already produced: it must not be produced again,
        # because every candidate below it is discarded by the Line 11 check.
        complete.add(
            TupleSet(tourist_db.tuple_by_label(label) for label in ("c1", "a1"))
        )
        results = labels(
            incremental_fd(
                tourist_db,
                "Climates",
                complete=complete,
                initial=[
                    TupleSet.singleton(tourist_db.tuple_by_label("c2")),
                    TupleSet.singleton(tourist_db.tuple_by_label("c3")),
                ],
            )
        )
        assert frozenset({"c1", "a1"}) not in results
