"""Live-mask retraction: stores and pools forget dead tuples without rebuilds."""

from __future__ import annotations

import pytest

from repro.core.priority import PriorityState, priority_incremental_fd
from repro.core.ranking import MaxRanking
from repro.core.store import CompleteStore, ListIncompletePool, PriorityIncompletePool
from repro.core.tupleset import TupleSet
from repro.relational.database import Database
from repro.relational.relation import Relation


def _database():
    database = Database()
    first = Relation("R1", ["A", "B"])
    second = Relation("R2", ["B", "C"])
    for row in range(3):
        first.add([f"a{row}", f"b{row}"])
        second.add([f"b{row}", f"c{row}"])
    database.add_relation(first)
    database.add_relation(second)
    return database


def _pairs(database):
    """The three joined {r1_i, r2_i} sets plus catalog handles."""
    catalog = database.catalog()
    first, second = database.relations
    sets = [
        TupleSet.of(a, b, catalog=catalog)
        for a, b in zip(first.tuples, second.tuples)
    ]
    return catalog, sets


@pytest.mark.parametrize("use_index", [False, True])
class TestCompleteStoreRetraction:
    def test_retracts_exactly_the_sets_containing_a_dead_tuple(self, use_index):
        database = _database()
        catalog, sets = _pairs(database)
        store = CompleteStore(anchor_relation=None, use_index=use_index)
        for tuple_set in sets:
            store.add(tuple_set)
        victim = database.relation("R1").tuple_by_label("r2")
        database.remove_tuple("R1", "r2")
        retracted = store.retract_containing({victim}, catalog=catalog)
        assert retracted == [sets[1]]
        assert len(store) == 2
        assert sets[1] not in store
        assert sets[0] in store and sets[2] in store

    def test_retracted_sets_stop_subsuming(self, use_index):
        database = _database()
        catalog, sets = _pairs(database)
        store = CompleteStore(anchor_relation=None, use_index=use_index)
        store.add(sets[0])
        member = sorted(sets[0])[0]
        probe = TupleSet.singleton(member, catalog=catalog)
        assert store.contains_superset(probe, anchor=member)
        dead = next(t for t in sets[0] if t is not member)
        database.remove_tuple(dead.relation_name, dead.label)
        store.retract_containing({dead}, catalog=catalog)
        assert not store.contains_superset(probe, anchor=member)
        answers = store.contains_superset_batch([probe], anchor=member)
        assert answers == [False]

    def test_surviving_buckets_are_cleaned(self, use_index):
        database = _database()
        catalog, sets = _pairs(database)
        store = CompleteStore(anchor_relation=None, use_index=use_index)
        for tuple_set in sets:
            store.add(tuple_set)
        dead = database.relation("R2").tuple_by_label("r1")
        survivor = database.relation("R1").tuple_by_label("r1")
        database.remove_tuple("R2", "r1")
        store.retract_containing({dead}, catalog=catalog)
        # The surviving member tuple's bucket no longer serves the dead set.
        probe = TupleSet.singleton(survivor, catalog=catalog)
        assert not store.contains_superset(probe, anchor=survivor)

    def test_emission_order_and_dedup(self, use_index):
        database = _database()
        catalog, sets = _pairs(database)
        store = CompleteStore(anchor_relation=None, use_index=use_index)
        store.add(sets[1])
        store.add(sets[0])
        store.add(sets[1])  # a covered re-add, as the delta pass performs
        dead = {
            database.relation("R1").tuple_by_label("r1"),
            database.relation("R1").tuple_by_label("r2"),
        }
        for t in dead:
            database.remove_tuple(t.relation_name, t.label)
        retracted = store.retract_containing(dead, catalog=catalog)
        assert retracted == [sets[1], sets[0]]  # insertion order, deduplicated
        assert len(store) == 0


class TestPoolEviction:
    def test_list_pool_discards_members_containing_dead_tuples(self):
        database = _database()
        catalog, sets = _pairs(database)
        pool = ListIncompletePool("R1", use_index=True)
        for tuple_set in sets:
            pool.add(tuple_set)
        victim = database.relation("R2").tuple_by_label("r2")
        assert pool.discard_containing({victim}) == 1
        assert len(pool) == 2
        assert sets[1] not in pool
        assert pool.discard_containing({victim}) == 0
        # The index is clean: no candidate list still serves the victim.
        anchor = sets[1].tuple_from("R1")
        assert sets[1] not in pool.candidates(TupleSet.singleton(anchor, catalog=catalog))

    def test_priority_pool_discards_and_heap_skips(self):
        database = _database()
        catalog, sets = _pairs(database)
        ranking = MaxRanking(lambda t: float(ord(t.label[-1])))
        pool = PriorityIncompletePool("R1", ranking, use_index=True)
        for tuple_set in sets:
            pool.add(tuple_set)
        top = pool.peek()
        dead = next(iter(top))
        assert pool.discard_containing({dead}) == 1
        assert pool.peek() != top
        assert len(pool) == 2


class TestPriorityStateRetract:
    def test_retract_evicts_queues_and_complete(self):
        database = _database()
        database.catalog()
        ranking = MaxRanking(lambda t: 1.0)
        state = PriorityState(database, ranking, use_index=True)
        results = list(state.results())
        assert results
        victim = database.relation("R1").tuple_by_label("r1")
        database.remove_tuple("R1", "r1")
        retracted = state.retract([victim])
        assert all(victim in tuple_set for tuple_set in retracted)
        assert all(victim not in tuple_set for tuple_set in state.complete)
        for pool in state.pools:
            assert all(victim not in member for member in pool)

    def test_retracted_results_match_a_fresh_post_deletion_run(self):
        database = _database()
        database.catalog()
        ranking = MaxRanking(lambda t: float(ord(t.label[-1])))
        state = PriorityState(database, ranking, use_index=True)
        list(state.results())
        victim = database.relation("R2").tuple_by_label("r3")
        database.remove_tuple("R2", "r3")
        state.retract([victim])
        surviving = {ts.labels() for ts in state.complete}
        fresh = {
            ts.labels()
            for ts, _ in priority_incremental_fd(database, ranking, use_index=True)
        }
        # Survivors are exactly the fresh results that are not newly unblocked
        # (re-derivation is the maintainer's job, not the state's).
        assert surviving <= fresh
        assert all(victim.label not in labels for labels in surviving)
