"""Tests for the paper's sorted triple-list representation of tuple sets."""

import pytest

from repro.core.triples import Triple, TripleList, merge_join_consistent, merge_triples
from repro.core.tupleset import TupleSet
from repro.relational.index import AttributePositions


def by_label(db, *labels):
    return TupleSet(db.tuple_by_label(label) for label in labels)


class TestSingletonConstruction:
    def test_triples_are_sorted_by_attribute(self, tourist_db):
        a1 = tourist_db.tuple_by_label("a1")
        triples = TripleList.from_singleton(a1)
        assert [t.attribute for t in triples] == ["City", "Country", "Hotel", "Stars"]
        assert all(t.relation == "Accommodations" for t in triples)

    def test_bucket_sort_with_positions_matches_plain_sort(self, tourist_db):
        positions = AttributePositions(tourist_db)
        for label in ("c1", "a1", "a3", "s2"):
            t = tourist_db.tuple_by_label(label)
            assert TripleList.from_singleton(t, positions) == TripleList.from_singleton(t)

    def test_values_are_preserved(self, tourist_db):
        c1 = tourist_db.tuple_by_label("c1")
        triples = TripleList.from_singleton(c1)
        assert Triple("Climates", "Climate", "diverse") in list(triples)
        assert Triple("Climates", "Country", "Canada") in list(triples)


class TestMerging:
    def test_merge_keeps_global_attribute_order(self, tourist_db):
        c1 = TripleList.from_singleton(tourist_db.tuple_by_label("c1"))
        a1 = TripleList.from_singleton(tourist_db.tuple_by_label("a1"))
        merged = merge_triples(c1, a1)
        attributes = [t.attribute for t in merged]
        assert attributes == sorted(attributes)

    def test_merge_orders_equal_attributes_by_relation(self, tourist_db):
        c1 = TripleList.from_singleton(tourist_db.tuple_by_label("c1"))
        a1 = TripleList.from_singleton(tourist_db.tuple_by_label("a1"))
        merged = merge_triples(c1, a1)
        country_entries = [t for t in merged if t.attribute == "Country"]
        assert [t.relation for t in country_entries] == ["Accommodations", "Climates"]

    def test_merge_with_self_is_idempotent(self, tourist_db):
        c1 = TripleList.from_singleton(tourist_db.tuple_by_label("c1"))
        assert merge_triples(c1, c1) == c1

    def test_from_tuple_set_equals_iterated_merge(self, tourist_db):
        ts = by_label(tourist_db, "c1", "a2", "s1")
        direct = TripleList.from_tuple_set(ts)
        assert len(direct) == 2 + 4 + 3
        assert direct.relations() != []


class TestMergeJoinConsistent:
    def test_agreement_on_shared_attribute(self, tourist_db):
        c1 = TripleList.from_singleton(tourist_db.tuple_by_label("c1"))
        a1 = TripleList.from_singleton(tourist_db.tuple_by_label("a1"))
        consistent, shares = merge_join_consistent(c1, a1)
        assert consistent and shares

    def test_disagreement_on_shared_attribute(self, tourist_db):
        c2 = TripleList.from_singleton(tourist_db.tuple_by_label("c2"))
        a1 = TripleList.from_singleton(tourist_db.tuple_by_label("a1"))
        consistent, shares = merge_join_consistent(c2, a1)
        assert not consistent and shares

    def test_null_shared_attribute_is_inconsistent(self, tourist_db):
        s2 = TripleList.from_singleton(tourist_db.tuple_by_label("s2"))
        a1 = TripleList.from_singleton(tourist_db.tuple_by_label("a1"))
        consistent, shares = merge_join_consistent(s2, a1)
        assert not consistent and shares

    def test_no_shared_attribute(self):
        first = TripleList([Triple("L", "A", "x")])
        second = TripleList([Triple("R", "B", "y")])
        consistent, shares = merge_join_consistent(first, second)
        assert consistent and not shares

    def test_agrees_with_tupleset_union_check_on_paper_pairs(self, tourist_db):
        pairs = [
            (("c1", "a2"), ("c1", "s1")),
            (("c1", "a1"), ("c1", "a2")),
            (("c1",), ("c2", "s3")),
            (("c1", "s2"), ("c1", "a2", "s1")),
        ]
        for first_labels, second_labels in pairs:
            first = by_label(tourist_db, *first_labels)
            second = by_label(tourist_db, *second_labels)
            consistent, shares = merge_join_consistent(
                TripleList.from_tuple_set(first), TripleList.from_tuple_set(second)
            )
            same_relation_conflict = any(
                first.tuple_from(name) is not None
                and second.tuple_from(name) is not None
                and first.tuple_from(name) != second.tuple_from(name)
                for name in first.relations | second.relations
            )
            expected = first.union(second).is_jcc
            # The triple-list check captures value-level consistency and
            # attribute sharing; the same-relation conflict is checked by the
            # caller in the paper's analysis.
            assert ((consistent and shares) and not same_relation_conflict) == expected
