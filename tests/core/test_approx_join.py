"""Tests for similarity functions and approximate join functions (Section 6)."""

import pytest

from repro.core.approx_join import (
    ApproximateJoinFunction,
    EditDistanceSimilarity,
    ExactJoin,
    ExactMatchSimilarity,
    MinJoin,
    ProductJoin,
    TableSimilarity,
    connected_pairs,
    levenshtein,
    string_similarity,
    tuple_probability,
)
from repro.core.tupleset import TupleSet
from repro.relational.errors import ApproximateJoinError
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.relational.database import Database
from repro.workloads.tourist import noisy_tourist_database, noisy_tourist_similarity


def by_label(db, *labels):
    return TupleSet(db.tuple_by_label(label) for label in labels)


class TestLevenshteinAndStringSimilarity:
    def test_identical_strings(self):
        assert levenshtein("canada", "canada") == 0
        assert string_similarity("canada", "canada") == 1.0

    def test_single_edit(self):
        assert levenshtein("canada", "cannada") == 1
        assert levenshtein("kitten", "sitting") == 3

    def test_empty_strings(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3
        assert string_similarity("", "") == 1.0

    def test_similarity_is_normalised_and_symmetric(self):
        assert 0.0 <= string_similarity("canada", "cannada") <= 1.0
        assert string_similarity("a", "b") == 0.0
        assert string_similarity("abc", "abd") == pytest.approx(2 / 3)
        assert string_similarity("x", "xyz") == string_similarity("xyz", "x")


class TestSimilarityFunctions:
    def test_exact_match_similarity(self, tourist_db):
        sim = ExactMatchSimilarity()
        c1 = tourist_db.tuple_by_label("c1")
        a1 = tourist_db.tuple_by_label("a1")
        c2 = tourist_db.tuple_by_label("c2")
        assert sim(c1, a1) == 1.0
        assert sim(c2, a1) == 0.0

    def test_edit_distance_similarity_on_shared_keys(self, noisy_db):
        sim = EditDistanceSimilarity()
        c1 = noisy_db.tuple_by_label("c1")  # Cannada
        a1 = noisy_db.tuple_by_label("a1")  # Canada
        value = sim(c1, a1)
        assert 0.8 <= value < 1.0

    def test_edit_distance_similarity_null_gives_zero(self, tourist_db):
        sim = EditDistanceSimilarity()
        s2 = tourist_db.tuple_by_label("s2")  # City is null
        a1 = tourist_db.tuple_by_label("a1")
        assert sim(s2, a1) == 0.0

    def test_edit_distance_similarity_non_string_mismatch_is_zero(self):
        left = Relation.from_rows("L", ["K"], [[4]])
        right = Relation.from_rows("R", ["K"], [[5]])
        sim = EditDistanceSimilarity()
        assert sim(left.tuples[0], right.tuples[0]) == 0.0

    def test_edit_distance_similarity_without_shared_attributes(self):
        left = Relation.from_rows("L", ["A"], [["x"]])
        right = Relation.from_rows("R", ["B"], [["y"]])
        assert EditDistanceSimilarity()(left.tuples[0], right.tuples[0]) == 1.0

    def test_table_similarity_lookup_and_default(self, noisy_db):
        sim = noisy_tourist_similarity()
        c1 = noisy_db.tuple_by_label("c1")
        a2 = noisy_db.tuple_by_label("a2")
        s3 = noisy_db.tuple_by_label("s3")
        c2 = noisy_db.tuple_by_label("c2")
        assert sim(c1, a2) == 0.5          # explicit table entry
        assert sim(a2, c1) == 0.5          # symmetry
        assert sim(c2, s3) == 1.0          # default: exact match (join consistent)

    def test_table_similarity_constant_default(self, noisy_db):
        sim = TableSimilarity({}, default=0.25)
        assert sim(noisy_db.tuple_by_label("c1"), noisy_db.tuple_by_label("a1")) == 0.25

    def test_similarity_outside_unit_interval_is_rejected(self, tourist_db):
        class Broken(ExactMatchSimilarity):
            def compute(self, first, second):
                return 2.0

        with pytest.raises(ApproximateJoinError):
            Broken()(tourist_db.tuple_by_label("c1"), tourist_db.tuple_by_label("a1"))


class TestConnectedPairs:
    def test_pairs_follow_schema_connectivity(self, tourist_db):
        ts = by_label(tourist_db, "c1", "a2", "s1")
        pairs = {(a.label, b.label) for a, b in connected_pairs(ts)}
        assert pairs == {("a2", "c1"), ("a2", "s1"), ("c1", "s1")}

    def test_singleton_has_no_pairs(self, tourist_db):
        assert list(connected_pairs(by_label(tourist_db, "c1"))) == []


class TestMinJoin:
    @pytest.fixture
    def amin(self):
        return MinJoin(noisy_tourist_similarity())

    def test_empty_and_singleton(self, noisy_db, amin):
        assert amin(TupleSet.empty()) == 1.0
        assert amin(by_label(noisy_db, "s2")) == pytest.approx(0.6)  # prob(s2)

    def test_disconnected_set_scores_zero(self, noisy_db, amin):
        assert amin(by_label(noisy_db, "c1", "c2")) == 0.0

    def test_value_is_min_of_probs_and_sims(self, noisy_db, amin):
        assert amin(by_label(noisy_db, "c1", "a2", "s2")) == pytest.approx(0.5)
        assert amin(by_label(noisy_db, "c1", "s2")) == pytest.approx(0.6)

    def test_acceptability_spot_check(self, noisy_db, amin):
        sets = [
            by_label(noisy_db, "c1"),
            by_label(noisy_db, "c1", "a2"),
            by_label(noisy_db, "c1", "a2", "s2"),
            by_label(noisy_db, "c1", "c2"),
            by_label(noisy_db, "s1", "s2"),
        ]
        assert amin.check_acceptable_on(sets)

    def test_candidate_extension_below_probability_threshold_is_empty(self, noisy_db, amin):
        base = by_label(noisy_db, "c1", "a2")
        s2 = noisy_db.tuple_by_label("s2")   # prob 0.6
        assert amin.candidate_extensions(base, s2, 0.7) == []

    def test_candidate_extension_drops_dissimilar_members(self, noisy_db, amin):
        # A_min({c1, a1}) = 0.7 ≥ τ = 0.65; adding s1 forces a1 out because
        # sim(a1, s1) = 0 < τ while sim(c1, s1) = 0.9 keeps c1 in.
        base = by_label(noisy_db, "c1", "a1")
        s1 = noisy_db.tuple_by_label("s1")
        extensions = amin.candidate_extensions(base, s1, 0.65)
        assert [ts.labels() for ts in extensions] == [frozenset({"c1", "s1"})]
        assert amin(extensions[0]) >= 0.65


class TestProductJoin:
    @pytest.fixture
    def aprod(self):
        return ProductJoin(noisy_tourist_similarity())

    def test_empty_singleton_and_disconnected(self, noisy_db, aprod):
        assert aprod(TupleSet.empty()) == 1.0
        assert aprod(by_label(noisy_db, "c1")) == 1.0
        assert aprod(by_label(noisy_db, "c1", "c2")) == 0.0

    def test_value_is_product_over_connected_pairs(self, noisy_db, aprod):
        assert aprod(by_label(noisy_db, "c1", "a2", "s2")) == pytest.approx(0.8 * 0.8 * 0.5)

    def test_acceptability_spot_check(self, noisy_db, aprod):
        sets = [
            by_label(noisy_db, "c1"),
            by_label(noisy_db, "c1", "s2"),
            by_label(noisy_db, "c1", "a2", "s2"),
            by_label(noisy_db, "c2", "c3"),
        ]
        assert aprod.check_acceptable_on(sets)

    def test_generic_candidate_extensions_are_maximal_and_qualifying(self, noisy_db, aprod):
        base = by_label(noisy_db, "c1", "s1", "a2")
        s2 = noisy_db.tuple_by_label("s2")
        extensions = aprod.candidate_extensions(base, s2, 0.4)
        for ts in extensions:
            assert s2 in ts
            assert aprod(ts) >= 0.4
        # maximality: no extension is contained in another
        for first in extensions:
            for second in extensions:
                if first != second:
                    assert not first.issubset(second)


class TestExactJoinAdapter:
    def test_scores_are_indicator_of_jcc(self, tourist_db):
        exact = ExactJoin()
        assert exact(by_label(tourist_db, "c1", "a1")) == 1.0
        assert exact(by_label(tourist_db, "c2", "a1")) == 0.0
        assert exact(TupleSet.empty()) == 1.0

    def test_candidate_extensions_use_footnote_3(self, tourist_db):
        exact = ExactJoin()
        base = by_label(tourist_db, "c1", "a1")
        a2 = tourist_db.tuple_by_label("a2")
        assert [ts.labels() for ts in exact.candidate_extensions(base, a2, 1.0)] == [
            frozenset({"c1", "a2"})
        ]


class TestScoreValidation:
    def test_score_outside_unit_interval_raises(self, tourist_db):
        class Broken(ApproximateJoinFunction):
            def score(self, tuple_set):
                return 1.5

        with pytest.raises(ApproximateJoinError):
            Broken()(by_label(tourist_db, "c1"))

    def test_tuple_probability_helper(self, noisy_db):
        assert tuple_probability(noisy_db.tuple_by_label("s2")) == pytest.approx(0.6)
