"""Tests for ranked retrieval of approximate full disjunctions (end of Section 6)."""

import pytest

from repro.core.approx import approx_full_disjunction
from repro.core.approx_join import EditDistanceSimilarity, ExactJoin, MinJoin
from repro.core.full_disjunction import full_disjunction
from repro.core.priority import priority_incremental_fd
from repro.core.ranked_approx import (
    approx_top_k,
    enumerate_qualifying_subsets,
    ranked_approx_full_disjunction,
)
from repro.core.ranking import MaxRanking, SumRanking
from repro.relational.errors import RankingError
from repro.workloads.dirty import dirty_sources_database
from repro.workloads.tourist import (
    noisy_tourist_database,
    noisy_tourist_similarity,
    tourist_database,
    tourist_importance,
)

from tests.conftest import labels_of


@pytest.fixture
def noisy():
    return noisy_tourist_database()


@pytest.fixture
def amin():
    return MinJoin(noisy_tourist_similarity())


@pytest.fixture
def ranking():
    return MaxRanking(tourist_importance())


class TestEnumerateQualifyingSubsets:
    def test_singletons_below_threshold_are_excluded(self, noisy, amin):
        subsets = list(
            enumerate_qualifying_subsets(noisy, "Sites", 1, amin, threshold=0.7)
        )
        labels = {next(iter(ts)).label for ts in subsets}
        assert "s2" not in labels  # prob(s2) = 0.6
        assert "s1" in labels

    def test_all_enumerated_sets_qualify(self, noisy, amin):
        for ts in enumerate_qualifying_subsets(noisy, "Climates", 2, amin, 0.5):
            assert amin(ts) >= 0.5
            assert len(ts) <= 2
            assert ts.contains_tuple_from("Climates")

    def test_respects_size_bound(self, noisy, amin):
        subsets = list(enumerate_qualifying_subsets(noisy, "Climates", 3, amin, 0.4))
        assert max(len(ts) for ts in subsets) <= 3


class TestRankedApproxFullDisjunction:
    def test_produces_afd_in_rank_order(self, noisy, amin, ranking):
        ranked = list(ranked_approx_full_disjunction(noisy, amin, 0.4, ranking))
        expected = labels_of(approx_full_disjunction(noisy, amin, 0.4))
        assert labels_of(ts for ts, _ in ranked) == expected
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_scores_match_the_ranking_function(self, noisy, amin, ranking):
        for tuple_set, score in ranked_approx_full_disjunction(noisy, amin, 0.4, ranking):
            assert score == ranking(tuple_set)

    def test_top_k_prefix_matches_the_full_ranked_run(self, noisy, amin, ranking):
        everything = list(ranked_approx_full_disjunction(noisy, amin, 0.4, ranking))
        top = approx_top_k(noisy, amin, 0.4, ranking, 3)
        assert [score for _, score in top] == [score for _, score in everything[:3]]

    def test_k_zero_and_negative(self, noisy, amin, ranking):
        assert approx_top_k(noisy, amin, 0.4, ranking, 0) == []
        with pytest.raises(ValueError):
            list(ranked_approx_full_disjunction(noisy, amin, 0.4, ranking, k=-1))

    def test_invalid_threshold_rejected(self, noisy, amin, ranking):
        with pytest.raises(ValueError):
            list(ranked_approx_full_disjunction(noisy, amin, 1.5, ranking))

    def test_non_c_determined_ranking_rejected(self, noisy, amin):
        with pytest.raises(RankingError):
            list(ranked_approx_full_disjunction(noisy, amin, 0.4, SumRanking()))

    def test_rank_threshold_variant(self, noisy, amin, ranking):
        everything = list(ranked_approx_full_disjunction(noisy, amin, 0.4, ranking))
        cutoff = 3.0
        expected = {ts.labels() for ts, score in everything if score >= cutoff}
        got = list(
            ranked_approx_full_disjunction(noisy, amin, 0.4, ranking, rank_threshold=cutoff)
        )
        assert {ts.labels() for ts, _ in got} == expected

    def test_with_exact_join_reduces_to_priority_incremental_fd(self, ranking):
        database = tourist_database()
        via_exact = [
            (ts.labels(), score)
            for ts, score in priority_incremental_fd(database, ranking)
        ]
        via_approx = [
            (ts.labels(), score)
            for ts, score in ranked_approx_full_disjunction(
                database, ExactJoin(), 1.0, ranking
            )
        ]
        assert {entry[0] for entry in via_exact} == {entry[0] for entry in via_approx}
        assert [entry[1] for entry in via_exact] == [entry[1] for entry in via_approx]

    def test_use_index_does_not_change_results(self, noisy, amin, ranking):
        plain = labels_of(
            ts for ts, _ in ranked_approx_full_disjunction(noisy, amin, 0.4, ranking)
        )
        indexed = labels_of(
            ts
            for ts, _ in ranked_approx_full_disjunction(
                noisy, amin, 0.4, ranking, use_index=True
            )
        )
        assert plain == indexed

    def test_on_dirty_workload(self):
        database = dirty_sources_database(
            entities=8, sources=2, coverage=1.0, typo_rate=0.4, null_rate=0.0, seed=9,
            source_reliability=[1.0, 1.0],
        )
        amin = MinJoin(EditDistanceSimilarity())
        ranking = MaxRanking(lambda t: float(len(t.label)))
        ranked = list(ranked_approx_full_disjunction(database, amin, 0.7, ranking))
        assert labels_of(ts for ts, _ in ranked) == labels_of(
            approx_full_disjunction(database, amin, 0.7)
        )
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
