"""Tests for ``PriorityIncrementalFD`` (Fig. 3): ranked and threshold retrieval."""

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.priority import (
    PriorityState,
    above_threshold,
    build_priority_pools,
    priority_incremental_fd,
    top_k,
)
from repro.core.ranking import (
    CDeterminedRanking,
    MaxRanking,
    SumRanking,
    importance_function,
    paper_example_ranking,
    top_k_by_exhaustive_ranking,
)
from repro.relational.errors import RankingError
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import tourist_importance

from tests.conftest import labels_of


@pytest.fixture
def ranking():
    return MaxRanking(tourist_importance())


class TestBuildPriorityPools:
    def test_one_pool_per_relation(self, tourist_db, ranking):
        pools = build_priority_pools(tourist_db, ranking)
        assert len(pools) == 3

    def test_no_two_pool_members_share_an_fd_member(self, tourist_db, ranking):
        """The merge loop re-establishes the Remark 4.5 invariant."""
        pools = build_priority_pools(tourist_db, ranking)
        results = full_disjunction(tourist_db)
        for pool in pools:
            members = list(pool)
            for result in results:
                inside = [m for m in members if m.issubset(result)]
                assert len(inside) <= 1

    def test_rejects_non_c_determined_ranking(self, tourist_db):
        with pytest.raises(RankingError):
            build_priority_pools(tourist_db, SumRanking(tourist_importance()))


class TestRankedOrder:
    def test_produces_whole_fd_in_non_increasing_order(self, tourist_db, ranking):
        ranked = list(priority_incremental_fd(tourist_db, ranking))
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(tourist_db))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_reported_scores_match_the_ranking_function(self, tourist_db, ranking):
        for tuple_set, score in priority_incremental_fd(tourist_db, ranking):
            assert score == ranking(tuple_set)

    def test_intro_scenario_best_destination_first(self, tourist_db, ranking):
        # The tourist prefers the 4-star Plaza (imp 4) above everything else.
        best, score = next(iter(priority_incremental_fd(tourist_db, ranking)))
        assert best.labels() == frozenset({"c1", "a1"})
        assert score == 4.0

    def test_works_with_3_determined_ranking(self, tourist_db):
        ranking = paper_example_ranking(tourist_importance())
        ranked = list(priority_incremental_fd(tourist_db, ranking))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(tourist_db))

    def test_works_with_2_determined_ranking_on_synthetic_data(self):
        database = chain_database(relations=3, tuples_per_relation=5, domain_size=3, seed=11)
        imp = importance_function(lambda t: float(len(t.label)))
        ranking = CDeterminedRanking(2, lambda subset: max(imp(t) for t in subset))
        ranked = list(priority_incremental_fd(database, ranking))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(database))

    def test_use_index_does_not_change_the_output(self, tourist_db, ranking):
        plain = [(ts.labels(), score) for ts, score in priority_incremental_fd(tourist_db, ranking)]
        indexed = [
            (ts.labels(), score)
            for ts, score in priority_incremental_fd(tourist_db, ranking, use_index=True)
        ]
        assert {p[0] for p in plain} == {p[0] for p in indexed}
        assert [p[1] for p in plain] == [p[1] for p in indexed]

    def test_statistics_are_populated(self, tourist_db, ranking):
        statistics = FDStatistics()
        list(priority_incremental_fd(tourist_db, ranking, statistics=statistics))
        assert statistics.results == 6
        assert statistics.tuple_reads > 0


class TestTopK:
    def test_top_k_matches_exhaustive_ranking(self, tourist_db, ranking):
        all_results = full_disjunction(tourist_db)
        for k in (1, 2, 3, 6):
            expected_scores = sorted(
                (ranking(ts) for ts in all_results), reverse=True
            )[:k]
            got = top_k(tourist_db, ranking, k)
            assert [score for _, score in got] == expected_scores

    def test_top_k_on_star_matches_exhaustive(self, ranking):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        imp = importance_function(lambda t: float(hash(t.label) % 13))
        star_ranking = MaxRanking(imp)
        expected = top_k_by_exhaustive_ranking(
            full_disjunction(database), star_ranking, 5
        )
        got = top_k(database, star_ranking, 5)
        assert [star_ranking(ts) for ts, _ in got] == [star_ranking(ts) for ts in expected]

    def test_k_zero_returns_nothing(self, tourist_db, ranking):
        assert top_k(tourist_db, ranking, 0) == []

    def test_k_larger_than_result_returns_everything(self, tourist_db, ranking):
        assert len(top_k(tourist_db, ranking, 50)) == 6

    def test_negative_k_raises(self, tourist_db, ranking):
        with pytest.raises(ValueError):
            list(priority_incremental_fd(tourist_db, ranking, k=-1))

    def test_results_are_distinct(self, tourist_db, ranking):
        results = [ts for ts, _ in top_k(tourist_db, ranking, 6)]
        assert len(results) == len(set(results))

    def test_non_c_determined_ranking_is_rejected(self, tourist_db):
        with pytest.raises(RankingError):
            top_k(tourist_db, SumRanking(tourist_importance()), 1)


class TestPriorityState:
    def test_resumed_pulls_continue_one_stream(self, tourist_db, ranking):
        """The queue state is explicit: stop, resume, get the same stream."""
        reference = list(priority_incremental_fd(tourist_db, ranking))
        state = PriorityState(tourist_db, ranking)
        resumed = []
        resumed.extend(state.results(k=2))
        resumed.extend(state.results(k=1))
        resumed.extend(state.results())
        assert [(ts.labels(), s) for ts, s in resumed] == [
            (ts.labels(), s) for ts, s in reference
        ]
        assert state.printed == len(reference)

    def test_abandoned_generator_leaves_the_state_resumable(self, tourist_db, ranking):
        state = PriorityState(tourist_db, ranking)
        first = next(iter(state.results()))  # abandon the generator mid-stream
        rest = list(state.results())
        reference = list(priority_incremental_fd(tourist_db, ranking))
        assert [first[1]] + [s for _, s in rest] == [s for _, s in reference]

    def test_record_statistics_is_delta_safe(self, tourist_db, ranking):
        """Recording at every pause never double-counts store work."""
        statistics = FDStatistics()
        state = PriorityState(tourist_db, ranking, use_index=True,
                              statistics=statistics)
        list(state.results(k=2))
        state.record_statistics()
        mid = dict(statistics.extras)
        state.record_statistics()  # no work in between: nothing to charge
        assert statistics.extras == mid
        list(state.results())
        state.record_statistics()

        reference_statistics = FDStatistics()
        list(
            priority_incremental_fd(
                tourist_db, ranking, use_index=True,
                statistics=reference_statistics,
            )
        )
        assert (
            statistics.extras["complete_sets_scanned"]
            == reference_statistics.extras["complete_sets_scanned"]
        )


class TestThreshold:
    def test_returns_exactly_the_results_at_or_above_tau(self, tourist_db, ranking):
        all_results = full_disjunction(tourist_db)
        for tau in (1.0, 2.0, 2.5, 3.0, 4.0, 5.0):
            expected = {ts.labels() for ts in all_results if ranking(ts) >= tau}
            got = above_threshold(tourist_db, ranking, tau)
            assert {ts.labels() for ts, _ in got} == expected, tau

    def test_threshold_output_is_rank_ordered(self, tourist_db, ranking):
        scores = [score for _, score in above_threshold(tourist_db, ranking, 2.0)]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_above_everything_returns_nothing(self, tourist_db, ranking):
        assert above_threshold(tourist_db, ranking, 99.0) == []

    def test_tie_boundary_counters_split_produced_from_emitted(self):
        """Regression: a result produced at a rank tie straddling the
        threshold is recorded in Complete but not emitted — ``results``
        counts the former, ``results_emitted`` the latter."""
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, seed=11
        )
        # Two importance levels only: masses of duplicated scores, so some
        # queue top ties the threshold while its extension scores below it.
        ranking = MaxRanking(
            lambda t: 2.0 if sum(ord(ch) for ch in t.label) % 2 else 1.0
        )
        scores = sorted(
            {score for _, score in priority_incremental_fd(database, ranking)}
        )
        assert len(scores) >= 2, "the fixture must produce both score levels"
        tau = scores[-1]  # only the top tie group passes

        statistics = FDStatistics()
        emitted = list(
            priority_incremental_fd(
                database, ranking, threshold=tau, statistics=statistics
            )
        )
        assert all(score >= tau for _, score in emitted)
        assert statistics.results_emitted == len(emitted)
        # The produced counter includes the below-threshold skips, which is
        # exactly why it must not be read as "results delivered".
        assert statistics.results >= statistics.results_emitted

    def test_duplicated_importances_keep_counters_in_agreement(self, tourist_db):
        """With a truly monotone ranking, ties at tau are all emitted and
        the produced/emitted counters agree."""
        ranking = MaxRanking(
            {label: 1.0 for label in
             ("c1", "c2", "c3", "a1", "a2", "a3", "s1", "s2", "s3", "s4")}
        )
        statistics = FDStatistics()
        emitted = list(
            priority_incremental_fd(
                tourist_db, ranking, threshold=1.0, statistics=statistics
            )
        )
        assert emitted and all(score == 1.0 for _, score in emitted)
        assert statistics.results == statistics.results_emitted == len(emitted)

    def test_tie_boundary_skips_are_counted_as_produced_not_emitted(self, tourist_db):
        """The skip path itself: a ranking whose declared monotonicity is
        violated makes whole results score below their queue-top witnesses,
        so the threshold-tie skip fires — the result lands in Complete (it
        was produced, and must suppress re-derivations) and is counted in
        ``results`` but not in ``results_emitted``."""
        class LyingRanking(MaxRanking):
            def score(self, tuple_set):
                return 1.0 if len(tuple_set) <= 1 else 0.5

        statistics = FDStatistics()
        emitted = list(
            priority_incremental_fd(
                tourist_db, LyingRanking({}, default=0.0),
                threshold=1.0, statistics=statistics,
            )
        )
        # Every queue top is a singleton scoring 1.0 >= tau, every extended
        # result scores 0.5 < tau: nothing is emitted, yet results were
        # produced — the two counters must disagree by exactly the skips.
        assert emitted == []
        assert statistics.results_emitted == 0
        assert statistics.results > 0
