"""Tests for ``PriorityIncrementalFD`` (Fig. 3): ranked and threshold retrieval."""

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.priority import (
    above_threshold,
    build_priority_pools,
    priority_incremental_fd,
    top_k,
)
from repro.core.ranking import (
    CDeterminedRanking,
    MaxRanking,
    SumRanking,
    importance_function,
    paper_example_ranking,
    top_k_by_exhaustive_ranking,
)
from repro.relational.errors import RankingError
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import tourist_importance

from tests.conftest import labels_of


@pytest.fixture
def ranking():
    return MaxRanking(tourist_importance())


class TestBuildPriorityPools:
    def test_one_pool_per_relation(self, tourist_db, ranking):
        pools = build_priority_pools(tourist_db, ranking)
        assert len(pools) == 3

    def test_no_two_pool_members_share_an_fd_member(self, tourist_db, ranking):
        """The merge loop re-establishes the Remark 4.5 invariant."""
        pools = build_priority_pools(tourist_db, ranking)
        results = full_disjunction(tourist_db)
        for pool in pools:
            members = list(pool)
            for result in results:
                inside = [m for m in members if m.issubset(result)]
                assert len(inside) <= 1

    def test_rejects_non_c_determined_ranking(self, tourist_db):
        with pytest.raises(RankingError):
            build_priority_pools(tourist_db, SumRanking(tourist_importance()))


class TestRankedOrder:
    def test_produces_whole_fd_in_non_increasing_order(self, tourist_db, ranking):
        ranked = list(priority_incremental_fd(tourist_db, ranking))
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(tourist_db))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_reported_scores_match_the_ranking_function(self, tourist_db, ranking):
        for tuple_set, score in priority_incremental_fd(tourist_db, ranking):
            assert score == ranking(tuple_set)

    def test_intro_scenario_best_destination_first(self, tourist_db, ranking):
        # The tourist prefers the 4-star Plaza (imp 4) above everything else.
        best, score = next(iter(priority_incremental_fd(tourist_db, ranking)))
        assert best.labels() == frozenset({"c1", "a1"})
        assert score == 4.0

    def test_works_with_3_determined_ranking(self, tourist_db):
        ranking = paper_example_ranking(tourist_importance())
        ranked = list(priority_incremental_fd(tourist_db, ranking))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(tourist_db))

    def test_works_with_2_determined_ranking_on_synthetic_data(self):
        database = chain_database(relations=3, tuples_per_relation=5, domain_size=3, seed=11)
        imp = importance_function(lambda t: float(len(t.label)))
        ranking = CDeterminedRanking(2, lambda subset: max(imp(t) for t in subset))
        ranked = list(priority_incremental_fd(database, ranking))
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(database))

    def test_use_index_does_not_change_the_output(self, tourist_db, ranking):
        plain = [(ts.labels(), score) for ts, score in priority_incremental_fd(tourist_db, ranking)]
        indexed = [
            (ts.labels(), score)
            for ts, score in priority_incremental_fd(tourist_db, ranking, use_index=True)
        ]
        assert {p[0] for p in plain} == {p[0] for p in indexed}
        assert [p[1] for p in plain] == [p[1] for p in indexed]

    def test_statistics_are_populated(self, tourist_db, ranking):
        statistics = FDStatistics()
        list(priority_incremental_fd(tourist_db, ranking, statistics=statistics))
        assert statistics.results == 6
        assert statistics.tuple_reads > 0


class TestTopK:
    def test_top_k_matches_exhaustive_ranking(self, tourist_db, ranking):
        all_results = full_disjunction(tourist_db)
        for k in (1, 2, 3, 6):
            expected_scores = sorted(
                (ranking(ts) for ts in all_results), reverse=True
            )[:k]
            got = top_k(tourist_db, ranking, k)
            assert [score for _, score in got] == expected_scores

    def test_top_k_on_star_matches_exhaustive(self, ranking):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        imp = importance_function(lambda t: float(hash(t.label) % 13))
        star_ranking = MaxRanking(imp)
        expected = top_k_by_exhaustive_ranking(
            full_disjunction(database), star_ranking, 5
        )
        got = top_k(database, star_ranking, 5)
        assert [star_ranking(ts) for ts, _ in got] == [star_ranking(ts) for ts in expected]

    def test_k_zero_returns_nothing(self, tourist_db, ranking):
        assert top_k(tourist_db, ranking, 0) == []

    def test_k_larger_than_result_returns_everything(self, tourist_db, ranking):
        assert len(top_k(tourist_db, ranking, 50)) == 6

    def test_negative_k_raises(self, tourist_db, ranking):
        with pytest.raises(ValueError):
            list(priority_incremental_fd(tourist_db, ranking, k=-1))

    def test_results_are_distinct(self, tourist_db, ranking):
        results = [ts for ts, _ in top_k(tourist_db, ranking, 6)]
        assert len(results) == len(set(results))

    def test_non_c_determined_ranking_is_rejected(self, tourist_db):
        with pytest.raises(RankingError):
            top_k(tourist_db, SumRanking(tourist_importance()), 1)


class TestThreshold:
    def test_returns_exactly_the_results_at_or_above_tau(self, tourist_db, ranking):
        all_results = full_disjunction(tourist_db)
        for tau in (1.0, 2.0, 2.5, 3.0, 4.0, 5.0):
            expected = {ts.labels() for ts in all_results if ranking(ts) >= tau}
            got = above_threshold(tourist_db, ranking, tau)
            assert {ts.labels() for ts, _ in got} == expected, tau

    def test_threshold_output_is_rank_ordered(self, tourist_db, ranking):
        scores = [score for _, score in above_threshold(tourist_db, ranking, 2.0)]
        assert scores == sorted(scores, reverse=True)

    def test_threshold_above_everything_returns_nothing(self, tourist_db, ranking):
        assert above_threshold(tourist_db, ranking, 99.0) == []
