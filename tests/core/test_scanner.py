"""Tests for tuple and block scanners."""

import pytest

from repro.core.scanner import BlockScanner, TupleScanner


class TestTupleScanner:
    def test_scan_yields_every_tuple_in_database_order(self, tourist_db):
        scanner = TupleScanner(tourist_db)
        labels = [t.label for t in scanner.scan()]
        assert labels == ["c1", "c2", "c3", "a1", "a2", "a3", "s1", "s2", "s3", "s4"]

    def test_counters(self, tourist_db):
        scanner = TupleScanner(tourist_db)
        list(scanner.scan())
        list(scanner.scan())
        assert scanner.passes == 2
        assert scanner.tuple_reads == 20
        assert scanner.cost_summary() == {"tuple_reads": 20, "passes": 2}

    def test_skip_relations(self, tourist_db):
        scanner = TupleScanner(tourist_db)
        labels = [t.label for t in scanner.scan(skip_relations={"Climates"})]
        assert labels == ["a1", "a2", "a3", "s1", "s2", "s3", "s4"]


class TestBlockScanner:
    def test_same_tuple_stream_as_tuple_scanner(self, tourist_db):
        plain = [t.label for t in TupleScanner(tourist_db).scan()]
        for block_size in (1, 2, 3, 100):
            blocked = [t.label for t in BlockScanner(tourist_db, block_size).scan()]
            assert blocked == plain

    def test_block_read_count(self, tourist_db):
        scanner = BlockScanner(tourist_db, 2)
        blocks = list(scanner.scan_blocks())
        # Climates: 3 tuples -> 2 blocks; Accommodations: 3 -> 2; Sites: 4 -> 2.
        assert len(blocks) == 6
        assert scanner.block_reads == 6
        assert scanner.tuple_reads == 10
        assert scanner.passes == 1

    def test_blocks_do_not_span_relations(self, tourist_db):
        scanner = BlockScanner(tourist_db, 3)
        for block in scanner.scan_blocks():
            assert len({t.relation_name for t in block}) == 1

    def test_invalid_block_size(self, tourist_db):
        with pytest.raises(ValueError):
            BlockScanner(tourist_db, 0)

    def test_cost_summary_includes_block_fields(self, tourist_db):
        scanner = BlockScanner(tourist_db, 4)
        list(scanner.scan())
        summary = scanner.cost_summary()
        assert summary["block_size"] == 4
        assert summary["block_reads"] == 3
        assert summary["tuple_reads"] == 10

    def test_skip_relations(self, tourist_db):
        scanner = BlockScanner(tourist_db, 2)
        labels = [t.label for t in scanner.scan(skip_relations={"Sites", "Climates"})]
        assert labels == ["a1", "a2", "a3"]
