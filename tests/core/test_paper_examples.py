"""End-to-end reproduction of every worked example in the paper.

* Table 1 — the source relations (checked in ``tests/workloads/test_tourist``);
* Table 2 — the full disjunction, both as tuple sets and as padded rows;
* Table 3 — the execution trace of ``IncrementalFD(…, 1)``;
* Example 2.2 — the natural join contains the single fully-joined tuple;
* Example 4.1 — the loop runs exactly six times;
* Examples 6.1 / 6.3 and Fig. 4 — the approximate-join values and the maximal
  qualifying subsets for ``A_min`` and ``A_prod``.
"""

import pytest

from repro.core.approx_join import MinJoin, ProductJoin
from repro.core.full_disjunction import FullDisjunction, full_disjunction
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.trace import trace_incremental_fd
from repro.core.tupleset import TupleSet
from repro.relational import operators
from repro.relational.nulls import is_null
from repro.workloads.tourist import (
    TABLE2_TUPLE_SETS,
    TABLE3_TRACE,
    noisy_tourist_database,
    noisy_tourist_similarity,
    table2_padded_rows,
)

from tests.conftest import labels_of


class TestTable2:
    def test_tuple_sets(self, tourist_db):
        assert labels_of(full_disjunction(tourist_db)) == set(TABLE2_TUPLE_SETS)

    def test_tuple_set_count_is_six(self, tourist_db):
        assert len(full_disjunction(tourist_db)) == 6

    def test_padded_rows(self, tourist_db):
        fd = FullDisjunction(tourist_db)
        rows = {
            result.labels(): row
            for result, row in zip(fd.compute(), fd.padded_rows())
        }
        for expected in table2_padded_rows():
            row = rows[expected["labels"]]
            for attribute, value in expected.items():
                if attribute == "labels":
                    continue
                if is_null(value):
                    assert is_null(row[attribute]), (expected["labels"], attribute)
                else:
                    assert row[attribute] == value, (expected["labels"], attribute)


class TestExample22NaturalJoin:
    def test_natural_join_is_the_single_full_tuple(self, tourist_db):
        climates, accommodations, sites = tourist_db.relations
        joined = operators.natural_join(
            operators.natural_join(climates, accommodations), sites
        )
        assert len(joined) == 1
        row = joined.tuples[0].as_dict()
        assert row == {
            "Country": "Canada",
            "Climate": "diverse",
            "City": "London",
            "Hotel": "Ramada",
            "Stars": 3,
            "Site": "Air Show",
        }

    def test_tuple_set_without_accommodation_because_of_null(self, tourist_db):
        # "{c1, s2} does not contain a tuple from Accommodations since no tuple
        #  in Accommodations is join consistent with {c1, s2}" (Example 2.2).
        c1_s2 = TupleSet(tourist_db.tuple_by_label(label) for label in ("c1", "s2"))
        for t in tourist_db.relation("Accommodations"):
            assert not c1_s2.can_absorb(t)


class TestTable3AndExample41:
    def test_trace_matches_table3(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        for label, incomplete, complete in TABLE3_TRACE:
            snapshot = trace.snapshot(label)
            assert snapshot.incomplete_labels() == incomplete
            assert snapshot.complete_labels() == complete

    def test_loop_iterates_exactly_six_times(self, tourist_db):
        """Example 4.1: the loop over Incomplete iterates exactly |FD_1| = 6 times."""
        statistics = FDStatistics()
        results = list(incremental_fd(tourist_db, "Climates", statistics=statistics))
        assert len(results) == 6
        assert statistics.results == 6

    def test_results_follow_the_papers_order(self, tourist_db):
        results = [ts.labels() for ts in incremental_fd(tourist_db, "Climates")]
        assert results == [
            frozenset({"c1", "a1"}),
            frozenset({"c1", "a2", "s1"}),
            frozenset({"c1", "s2"}),
            frozenset({"c2", "s3"}),
            frozenset({"c2", "s4"}),
            frozenset({"c3", "a3"}),
        ]


class TestFig4AndSection6Examples:
    @pytest.fixture
    def noisy(self):
        return noisy_tourist_database()

    @pytest.fixture
    def sim(self):
        return noisy_tourist_similarity()

    def test_example_61_amin_value(self, noisy, sim):
        t1 = TupleSet(noisy.tuple_by_label(label) for label in ("c1", "a2", "s2"))
        assert MinJoin(sim)(t1) == pytest.approx(0.5)

    def test_example_61_aprod_value(self, noisy, sim):
        t1 = TupleSet(noisy.tuple_by_label(label) for label in ("c1", "a2", "s2"))
        assert ProductJoin(sim)(t1) == pytest.approx(0.32)

    def test_example_63_amin_unique_maximal_subset(self, noisy, sim):
        base = TupleSet(noisy.tuple_by_label(label) for label in ("c1", "s1", "a2"))
        s2 = noisy.tuple_by_label("s2")
        extensions = MinJoin(sim).candidate_extensions(base, s2, 0.4)
        assert [ts.labels() for ts in extensions] == [frozenset({"c1", "s2", "a2"})]
        assert MinJoin(sim)(extensions[0]) == pytest.approx(0.5)

    def test_example_63_aprod_two_maximal_subsets(self, noisy, sim):
        base = TupleSet(noisy.tuple_by_label(label) for label in ("c1", "s1", "a2"))
        s2 = noisy.tuple_by_label("s2")
        extensions = ProductJoin(sim).candidate_extensions(base, s2, 0.4)
        assert {ts.labels() for ts in extensions} == {
            frozenset({"c1", "s2"}),
            frozenset({"s2", "a2"}),
        }

    def test_example_63_aprod_full_set_fails_threshold(self, noisy, sim):
        full = TupleSet(noisy.tuple_by_label(label) for label in ("c1", "s2", "a2"))
        assert ProductJoin(sim)(full) == pytest.approx(0.32)
        assert ProductJoin(sim)(full) < 0.4
