"""Tests for ``ApproxIncrementalFD`` and the approximate full disjunction."""

import pytest

from repro.core.approx import (
    ApproximateFullDisjunction,
    approx_full_disjunction,
    approx_incremental_fd,
)
from repro.core.approx_join import EditDistanceSimilarity, ExactJoin, MinJoin, ProductJoin
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.baselines.naive import naive_approx_full_disjunction
from repro.workloads.dirty import dirty_sources_database
from repro.workloads.tourist import noisy_tourist_database, noisy_tourist_similarity

from tests.conftest import labels_of


@pytest.fixture
def amin():
    return MinJoin(noisy_tourist_similarity())


class TestApproxIncrementalFD:
    def test_threshold_validation(self, noisy_db, amin):
        with pytest.raises(ValueError):
            list(approx_incremental_fd(noisy_db, "Climates", amin, 1.5))

    def test_all_results_qualify_and_are_maximal(self, noisy_db, amin):
        tau = 0.4
        results = list(approx_incremental_fd(noisy_db, "Climates", amin, tau))
        for result in results:
            assert amin(result) >= tau
            for t in noisy_db.tuples():
                if t not in result and t.relation_name not in result.relations:
                    grown = result.with_tuple(t)
                    if grown.is_connected:
                        assert amin(grown) < tau
        assert len(results) == len(set(results))

    def test_every_result_contains_an_anchor_tuple(self, noisy_db, amin):
        for result in approx_incremental_fd(noisy_db, "Sites", amin, 0.4):
            assert result.contains_tuple_from("Sites")

    def test_low_probability_singletons_are_filtered_at_initialization(self, noisy_db, amin):
        # prob(s2) = 0.6: with τ = 0.7 no result may contain s2.
        results = list(approx_incremental_fd(noisy_db, "Sites", amin, 0.7))
        assert all("s2" not in result.labels() for result in results)

    def test_statistics(self, noisy_db, amin):
        statistics = FDStatistics()
        results = list(
            approx_incremental_fd(noisy_db, "Climates", amin, 0.4, statistics=statistics)
        )
        assert statistics.results == len(results) > 0


class TestApproxFullDisjunction:
    def test_matches_brute_force_oracle(self, noisy_db, amin):
        for tau in (0.3, 0.5, 0.65, 0.85):
            expected = labels_of(naive_approx_full_disjunction(noisy_db, amin, tau))
            produced = approx_full_disjunction(noisy_db, amin, tau)
            assert labels_of(produced) == expected, tau
            assert len(produced) == len(expected)

    def test_matches_oracle_with_product_join(self, noisy_db):
        aprod = ProductJoin(noisy_tourist_similarity())
        for tau in (0.35, 0.6):
            expected = labels_of(naive_approx_full_disjunction(noisy_db, aprod, tau))
            produced = approx_full_disjunction(noisy_db, aprod, tau)
            assert labels_of(produced) == expected, tau

    def test_exact_join_adapter_reduces_to_exact_fd(self, tourist_db):
        exact = labels_of(full_disjunction(tourist_db))
        via_approx = labels_of(approx_full_disjunction(tourist_db, ExactJoin(), 1.0))
        assert via_approx == exact

    def test_threshold_one_with_clean_similarity_matches_exact_fd(self, tourist_db):
        amin = MinJoin(EditDistanceSimilarity())
        # All probabilities are 1 and similarities are 1 exactly when the pair
        # is join consistent on non-null shared attributes, so τ = 1 recovers
        # the exact full disjunction.
        assert labels_of(approx_full_disjunction(tourist_db, amin, 1.0)) == labels_of(
            full_disjunction(tourist_db)
        )

    def test_lower_threshold_never_shrinks_coverage(self, noisy_db, amin):
        """Every exact/looser result is covered by some result at a lower τ."""
        strict = approx_full_disjunction(noisy_db, amin, 0.8)
        loose = approx_full_disjunction(noisy_db, amin, 0.5)
        for result in strict:
            assert any(result.issubset(other) for other in loose)

    def test_use_index_does_not_change_results(self, noisy_db, amin):
        plain = labels_of(approx_full_disjunction(noisy_db, amin, 0.4, use_index=False))
        indexed = labels_of(approx_full_disjunction(noisy_db, amin, 0.4, use_index=True))
        assert plain == indexed

    def test_reconnects_misspelled_entities_on_dirty_workload(self):
        database = dirty_sources_database(entities=6, sources=2, coverage=1.0,
                                          typo_rate=0.5, null_rate=0.0, seed=3)
        amin = MinJoin(EditDistanceSimilarity())
        exact_pairs = sum(len(ts) > 1 for ts in full_disjunction(database))
        approx_pairs = sum(len(ts) > 1 for ts in approx_full_disjunction(database, amin, 0.6))
        assert approx_pairs >= exact_pairs
        assert approx_pairs > 0


class TestApproximateFullDisjunctionFacade:
    def test_compute_and_scores(self, noisy_db, amin):
        afd = ApproximateFullDisjunction(noisy_db, amin, 0.4)
        results = afd.compute()
        assert results == afd.compute()  # cached
        scores = afd.scores()
        assert set(scores) == set(results)
        assert all(value >= 0.4 for value in scores.values())
        assert afd.threshold == 0.4

    def test_iteration_streams(self, noisy_db, amin):
        afd = ApproximateFullDisjunction(noisy_db, amin, 0.4)
        assert labels_of(iter(afd)) == labels_of(afd.compute())

    def test_padded_rows_and_pretty(self, noisy_db, amin):
        afd = ApproximateFullDisjunction(noisy_db, amin, 0.4)
        rows = afd.padded_rows()
        assert len(rows) == len(afd.compute())
        rendered = afd.pretty()
        assert "A" in rendered.splitlines()[0]
        # {a2, c1, s2} qualifies at τ = 0.4 with A_min = 0.5 (Example 6.1).
        assert "{a2, c1, s2}" in rendered
        assert "0.50" in rendered
