"""The kernel layer: selection, the packed mirror, and per-op parity.

The packed kernel re-implements the big-int inner loops on NumPy
``uint64`` packed-word arrays; its contract is *observational identity*
with :class:`repro.core.kernels.bigint.BigintKernel` — same answers, same
``sets_scanned`` accounting, same first-match semantics.  These tests
exercise the selection machinery (environment, override, NumPy gating),
the catalog's columnar mirror under appends and tombstones, and every
batch operation against the reference on randomized workloads.
"""

from __future__ import annotations

import os
import pickle
import random
from unittest import mock

import pytest

import repro.core.kernels as kernels
from repro.core.kernels import (
    KERNELS,
    active_kernel,
    numpy_available,
    resolve_kernel,
    use_kernel,
)
from repro.core.kernels.bigint import BigintKernel
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.scanner import TupleScanner
from repro.core.store import CompleteStore
from repro.core.tupleset import TupleSet
from repro.workloads.generators import chain_database, random_database, star_database
from repro.workloads.tourist import tourist_database

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the packed kernel needs NumPy"
)

AVAILABLE_KERNELS = [
    name for name in KERNELS if name != "packed" or numpy_available()
]



def _vectorized(kernel):
    """Zero the packed kernel's small-batch cutoffs.

    The cutoffs delegate small inputs to the reference (the NumPy dispatch
    overhead outweighs the vector win there); parity tests force the
    vectorized paths so they are exercised on small workloads too.
    """
    for attr in (
        "MIN_GROUP", "MIN_WAITING", "MIN_TOMBSTONED", "MIN_DEAD", "MIN_EXTEND",
    ):
        if hasattr(kernel, attr):
            setattr(kernel, attr, 0)
    return kernel

def _workload_factories():
    yield "tourist", tourist_database
    yield "chain", lambda: chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    )
    yield "star", lambda: star_database(
        spokes=3, tuples_per_relation=4, hub_domain=2, seed=11
    )
    for seed in (0, 1):
        yield f"random-{seed}", lambda seed=seed: random_database(
            relations=3,
            attributes=5,
            arity=3,
            tuples_per_relation=4,
            domain_size=2,
            null_rate=0.25,
            seed=seed,
        )


#: Deterministic builders, so tests that need a private database instance
#: (e.g. to give it a file-backed mirror) can clone any workload by name.
WORKLOAD_FACTORIES = dict(_workload_factories())
WORKLOADS = [(name, make()) for name, make in WORKLOAD_FACTORIES.items()]
WORKLOAD_IDS = [name for name, _ in WORKLOADS]

#: The mirror backings under test; both must be observationally identical.
MIRROR_BACKINGS = ["ram", "mmap"]


def _backed_database(name, backing, tmp_path):
    """A fresh instance of the named workload with the requested mirror.

    ``ram`` reuses the shared instances' behavior (anonymous NumPy arrays);
    ``mmap`` builds a private database whose catalog mirror lives in (and is
    maintained through) a file under ``tmp_path``.
    """
    database = WORKLOAD_FACTORIES[name]()
    catalog = database.catalog()
    if backing == "mmap":
        mirror = catalog.save_mirror(str(tmp_path / f"{name}.rpmc"))
        assert mirror.backing == "mmap"
    else:
        # Pin the RAM arm: the parametrization must hold even when the
        # ambient environment (e.g. a tiny REPRO_MMAP_THRESHOLD in CI)
        # would auto-select the file backing.
        with mock.patch.dict(os.environ, {"REPRO_MMAP": "off"}):
            mirror = catalog.packed_mirror()
        assert mirror.backing == "ram"
    return database


def _random_jcc_set(rng, all_tuples, catalog=None):
    current = TupleSet.singleton(rng.choice(all_tuples))
    for t in rng.sample(all_tuples, len(all_tuples)):
        if rng.random() < 0.6 and current.can_absorb(t):
            current = current.with_tuple(t)
    return TupleSet(current.tuples, catalog=catalog) if catalog else current


# ------------------------------------------------------------------ #
# selection
# ------------------------------------------------------------------ #
def test_default_kernel_matches_numpy_availability(monkeypatch):
    # Neutralize any REPRO_KERNEL override so the *default* rule is tested.
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    with use_kernel(None):
        expected = "packed" if numpy_available() else "bigint"
        assert active_kernel().name == expected


def test_environment_variable_selects_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "bigint")
    with use_kernel(None):
        assert active_kernel().name == "bigint"


def test_unknown_kernel_name_is_rejected():
    with pytest.raises(ValueError, match="unknown kernel"):
        resolve_kernel("simd")


def test_use_kernel_restores_previous_choice():
    before = active_kernel().name
    with use_kernel("bigint") as kernel:
        assert kernel.name == "bigint"
        assert active_kernel() is kernel
    assert active_kernel().name == before


def test_packed_without_numpy_warns_and_degrades(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_checked", False)
    with pytest.warns(RuntimeWarning, match="requires NumPy"):
        kernel = resolve_kernel("packed")
    assert kernel.name == "bigint"


def test_default_without_numpy_is_bigint_silently(monkeypatch):
    monkeypatch.setattr(kernels, "_numpy_checked", False)
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    with use_kernel(None):
        assert active_kernel().name == "bigint"


@pytest.mark.parametrize("name", AVAILABLE_KERNELS)
def test_statistics_carry_the_kernel_tag(name):
    database = tourist_database()
    with use_kernel(name):
        statistics = FDStatistics()
        list(incremental_fd(database, "Climates", statistics=statistics))
        assert statistics.extras["kernel"] == name


# ------------------------------------------------------------------ #
# the packed mirror
# ------------------------------------------------------------------ #
@requires_numpy
@pytest.mark.parametrize("backing", MIRROR_BACKINGS)
@pytest.mark.parametrize("name", WORKLOAD_IDS)
def test_mirror_matches_catalog_bigints(name, backing, tmp_path):
    database = _backed_database(name, backing, tmp_path)
    catalog = database.catalog()
    mirror = catalog.packed_mirror()
    assert mirror.backing == backing
    from repro.core.kernels.packed import unpack_to_int

    assert mirror.n == catalog.tuple_count
    for gid in range(catalog.tuple_count):
        assert mirror.row_as_int(gid) == catalog.consistent_mask(gid)
        assert int(mirror.tuple_relation[gid]) == catalog.relation_of_tuple(gid)
    for rid in range(catalog.relation_count):
        assert unpack_to_int(mirror.relation_tuples[rid]) == catalog.relation_tuples_mask(rid)
        assert unpack_to_int(mirror.adjacency[rid]) == catalog.adjacency_mask(rid)
    assert unpack_to_int(mirror.dead_words()) == catalog.dead_mask


def _mutate_40_steps(database, catalog):
    """The shared 40-step append/tombstone schedule (seeded, deterministic)."""
    rng = random.Random(17)
    for step in range(40):
        if rng.random() < 0.3:
            live = [
                t for t in database.tuples() if not catalog.is_tombstoned(t)
            ]
            if live:
                victim = rng.choice(live)
                database.remove_tuple(victim.relation_name, victim.label)
        else:
            relation = rng.choice(database.relations)
            values = [rng.choice([1, 2, 3, None]) for _ in relation.schema]
            database.add_tuple(relation.name, values, label=f"g{step}")


@requires_numpy
@pytest.mark.parametrize("backing", MIRROR_BACKINGS)
def test_mirror_tracks_appends_and_tombstones(backing, tmp_path):
    from repro.core.kernels.packed import unpack_to_int

    database = chain_database(
        relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=3
    )
    catalog = database.catalog()
    if backing == "mmap":
        mirror = catalog.save_mirror(str(tmp_path / "tracked.rpmc"))
    else:
        with mock.patch.dict(os.environ, {"REPRO_MMAP": "off"}):
            mirror = catalog.packed_mirror()  # built before the mutations below
    assert mirror.backing == backing
    _mutate_40_steps(database, catalog)
    assert catalog.packed_mirror() is mirror  # maintained, not rebuilt
    assert mirror.n == catalog.tuple_count
    for gid in range(catalog.tuple_count):
        assert mirror.row_as_int(gid) == catalog.consistent_mask(gid)
    for rid in range(catalog.relation_count):
        assert unpack_to_int(mirror.relation_tuples[rid]) == catalog.relation_tuples_mask(rid)
    assert unpack_to_int(mirror.dead_words()) == catalog.dead_mask


@requires_numpy
def test_mirror_backings_are_bit_identical_under_mutation(tmp_path):
    """RAM and file word arrays, word for word, through the 40-step schedule.

    Twin databases run the identical mutation sequence — one mirrored in
    anonymous NumPy arrays, one maintained through a mapped file (including
    its capacity-doubling growth) — and every section must come out
    bit-for-bit equal.
    """
    import numpy as np

    def build():
        database = chain_database(
            relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=3
        )
        return database, database.catalog()

    ram_db, ram_catalog = build()
    ram = ram_catalog.packed_mirror()
    mmap_db, mmap_catalog = build()
    mapped = mmap_catalog.save_mirror(str(tmp_path / "twin.rpmc"))
    _mutate_40_steps(ram_db, ram_catalog)
    _mutate_40_steps(mmap_db, mmap_catalog)

    assert (ram.n, ram.width) == (mapped.n, mapped.width)
    n, width = ram.n, ram.width
    assert np.array_equal(ram.consistent[:n, :width], mapped.consistent[:n, :width])
    assert np.array_equal(ram.tuple_relation[:n], mapped.tuple_relation[:n])
    assert np.array_equal(
        ram.relation_tuples[:, :width], mapped.relation_tuples[:, :width]
    )
    assert np.array_equal(ram.adjacency, mapped.adjacency)
    assert np.array_equal(ram.dead_words(), mapped.dead_words())


@requires_numpy
def test_catalog_pickles_without_the_mirror():
    """Regression: a RAM mirror is dropped on pickle and rebuilt lazily.

    Without a durable file there is nothing to reattach to, so the
    unpickled catalog pays an O(n x width) rebuild on first kernel use —
    the documented cost that the file-backed path (`save_mirror` +
    ``_mirror_path`` in the pickled state) exists to avoid; see
    ``test_file_backed_catalog_reattaches_across_processes``.
    """
    database = tourist_database()
    catalog = database.catalog()
    mirror = catalog.packed_mirror()
    assert mirror is not None
    clone = pickle.loads(pickle.dumps(catalog))
    assert clone._packed_mirror is None  # workers rebuild lazily
    assert clone.packed_mirror().n == mirror.n
    assert clone.tuple_count == catalog.tuple_count


_REATTACH_CHILD = """
import pickle, sys
with open(sys.argv[1], "rb") as handle:
    catalog = pickle.load(handle)
mirror = catalog._packed_mirror
assert mirror is not None, "child had to rebuild instead of reattaching"
assert mirror.backing == "mmap"
assert mirror.file.readonly
print(mirror.path)
print(",".join(str(catalog.consistent_mask(g)) for g in range(catalog.tuple_count)))
"""


@requires_numpy
def test_file_backed_catalog_reattaches_across_processes(tmp_path):
    """A pickled file-backed catalog reattaches to the same file in a worker.

    The pickle carries only the mirror *path* — the child process maps the
    identical bytes read-only (O(1), no rebuild) and serves the same
    consistency rows.
    """
    import os
    import subprocess
    import sys

    database = chain_database(
        relations=3, tuples_per_relation=4, domain_size=3, null_rate=0.2, seed=7
    )
    mirror_path = str(tmp_path / "shared.rpmc")
    database.save_mirror(mirror_path)
    catalog = database.catalog()
    pickle_path = str(tmp_path / "catalog.pkl")
    with open(pickle_path, "wb") as handle:
        pickle.dump(catalog, handle)

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.check_output(
        [sys.executable, "-c", _REATTACH_CHILD, pickle_path], env=env, text=True
    )
    child_path, child_rows = output.strip().splitlines()
    assert os.path.realpath(child_path) == os.path.realpath(mirror_path)
    assert [int(row) for row in child_rows.split(",")] == [
        catalog.consistent_mask(gid) for gid in range(catalog.tuple_count)
    ]


# ------------------------------------------------------------------ #
# per-op parity: packed vs the big-int reference
# ------------------------------------------------------------------ #
@requires_numpy
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_batch_contains_superset_parity(name, database):
    from repro.core.kernels.packed import PackedKernel

    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(5)
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for _ in range(30):
        group = [_random_jcc_set(rng, all_tuples, catalog) for _ in range(6)]
        probes = [_random_jcc_set(rng, all_tuples, catalog) for _ in range(4)]
        if rng.random() < 0.5 and group:
            # Force genuine subset hits: probe a stored set's subset.
            donor = rng.choice(group)
            members = rng.sample(
                sorted(donor.tuples, key=lambda t: (t.relation_name, t.label)),
                rng.randint(1, len(donor)),
            )
            probes.append(TupleSet(members, catalog=catalog))
        want = reference.batch_contains_superset(group, probes)
        got = packed.batch_contains_superset(group, probes, cache={}, cache_key="k")
        assert got[0] == want[0]
        assert got[1] == want[1]  # the sets_scanned early-break emulation


@requires_numpy
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_first_jcc_union_parity(name, database):
    from repro.core.kernels.packed import PackedKernel

    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(23)
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for _ in range(40):
        waiting = [_random_jcc_set(rng, all_tuples, catalog) for _ in range(5)]
        candidate = _random_jcc_set(rng, all_tuples, catalog)
        assert packed.first_jcc_union(waiting, candidate) == reference.first_jcc_union(
            waiting, candidate
        )


@requires_numpy
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_batch_can_absorb_parity(name, database):
    from repro.core.kernels.packed import PackedKernel

    catalog = database.catalog()
    all_tuples = list(database.tuples())
    gids = list(range(catalog.tuple_count))
    rng = random.Random(31)
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for _ in range(30):
        ts = _random_jcc_set(rng, all_tuples, catalog)
        want = reference.batch_can_absorb(catalog, ts._id_mask, ts._relation_mask, gids)
        got = packed.batch_can_absorb(catalog, ts._id_mask, ts._relation_mask, gids)
        assert list(got) == list(want)
        for gid, flag in zip(gids, want):
            # The kernel answers for *outside* tuples; membership is the
            # caller's short-circuit (can_absorb returns True on a member).
            t = catalog.tuple_at(gid)
            if t not in ts:
                assert ts.can_absorb(t) == bool(flag)


@requires_numpy
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_maximally_extend_parity(name, database):
    from repro.core.kernels.packed import PackedKernel

    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(47)
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for _ in range(15):
        seed_set = _random_jcc_set(rng, all_tuples, catalog)
        ref_stats, packed_stats = FDStatistics(), FDStatistics()
        want = reference.maximally_extend(seed_set, TupleScanner(database), ref_stats)
        got = packed.maximally_extend(seed_set, TupleScanner(database), packed_stats)
        assert got.tuples == want.tuples
        assert packed_stats.extension_passes == ref_stats.extension_passes
        assert packed_stats.tuple_reads == ref_stats.tuple_reads


@requires_numpy
def test_retraction_sweeps_parity_under_mutations():
    from repro.core.kernels.packed import PackedKernel

    database = chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=9
    )
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(61)
    sets = [_random_jcc_set(rng, all_tuples, catalog) for _ in range(12)]
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for step in range(6):
        live = [t for t in database.tuples() if not catalog.is_tombstoned(t)]
        victim = rng.choice(live)
        if step % 2:
            values = [rng.choice([1, 2, 3]) for _ in victim.values]
            database.update_tuple(victim.relation_name, victim.label, values)
        else:
            database.remove_tuple(victim.relation_name, victim.label)
        dead = {t for t in all_tuples if catalog.is_tombstoned(t)}
        assert packed.batch_contains_tombstoned(sets, catalog) == (
            reference.batch_contains_tombstoned(sets, catalog)
        )
        assert packed.batch_contains_dead(sets, dead) == (
            reference.batch_contains_dead(sets, dead)
        )


@requires_numpy
def test_batch_contains_dead_sees_equal_reincarnations():
    """An equal tuple appended after a tombstone must not hide the dead one.

    ``update_tuple`` back to the original values creates a *live* tuple equal
    to a tombstoned incarnation; the packed sweep must match the reference's
    Python-equality semantics, not the gid identity.
    """
    from repro.core.kernels.packed import PackedKernel

    database = chain_database(
        relations=2, tuples_per_relation=3, domain_size=2, null_rate=0.0, seed=2
    )
    catalog = database.catalog()
    target = next(iter(database.relations[0]))
    original_values = list(target.values)
    stale = TupleSet.singleton(target).attach_catalog(catalog)
    database.update_tuple(target.relation_name, target.label, [v if v is None else v for v in original_values])
    # Force a real round-trip: change then restore the original values.
    database.update_tuple(target.relation_name, target.label, [2 for _ in original_values])
    database.update_tuple(target.relation_name, target.label, original_values)
    dead = {target}
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    assert packed.batch_contains_dead([stale], dead) == (
        reference.batch_contains_dead([stale], dead)
    )


@requires_numpy
def test_popcount_parity():
    from repro.core.kernels.packed import PackedKernel

    rng = random.Random(3)
    reference, packed = BigintKernel(), _vectorized(PackedKernel())
    for _ in range(50):
        mask = rng.getrandbits(rng.randint(1, 400))
        assert packed.popcount(mask) == reference.popcount(mask)
    assert packed.popcount(0) == 0


# ------------------------------------------------------------------ #
# the store's kernel cache
# ------------------------------------------------------------------ #
@requires_numpy
def test_store_kernel_cache_is_invalidated_by_retraction():
    database = chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=13
    )
    catalog = database.catalog()
    all_tuples = list(database.tuples())
    rng = random.Random(29)
    with use_kernel("packed") as kernel:
        _vectorized(kernel)
        store = CompleteStore(anchor_relation=None, use_index=True)
        sets = [_random_jcc_set(rng, all_tuples, catalog) for _ in range(8)]
        for ts in sets:
            store.add(ts)
        anchors = [min(ts.tuples, key=lambda t: (t.relation_name, t.label)) for ts in sets]
        for ts, anchor in zip(sets, anchors):
            assert store.contains_superset_batch([ts], anchor=anchor) == [True]
        assert store._kernel_cache  # the group matrices are warm
        victim = anchors[0]
        database.remove_tuple(victim.relation_name, victim.label)
        removed = store.retract_containing({victim}, catalog=catalog)
        assert all(victim in ts for ts in removed)
        assert not store._kernel_cache  # invalidated, not stale
        survivors = [ts for ts in sets if victim not in ts]
        for ts in survivors:
            anchor = min(ts.tuples, key=lambda t: (t.relation_name, t.label))
            assert store.contains_superset_batch([ts], anchor=anchor) == [True]


# ------------------------------------------------------------------ #
# the whole driver on forced-vectorized paths
# ------------------------------------------------------------------ #
@requires_numpy
@pytest.mark.parametrize("name", WORKLOAD_IDS)
def test_driver_stream_is_identical_on_forced_vectorized_paths(name, tmp_path):
    """End to end through every packed code path, cutoffs zeroed — four ways.

    These workloads are small enough that the production cutoffs would
    delegate everything to the reference; forcing the vectorized paths
    runs the real batched driver through the packed probe, merge, and
    extend loops and asserts the ordered result stream — and the scan
    counters — are byte-identical across the big-int run and the packed
    kernel on *both* mirror backings (anonymous RAM arrays and the
    mapped file).
    """
    from repro.core.full_disjunction import full_disjunction

    streams = {}
    scans = {}
    modes = [("bigint", "ram"), ("packed", "ram"), ("packed", "mmap")]
    for kernel_name, backing in modes:
        database = _backed_database(name, backing, tmp_path)
        with use_kernel(kernel_name) as kernel:
            _vectorized(kernel)
            statistics = FDStatistics()
            results = full_disjunction(
                database, use_index=True, backend="batched", statistics=statistics
            )
            streams[(kernel_name, backing)] = [
                tuple(sorted((t.relation_name, t.label) for t in ts))
                for ts in results
            ]
            scans[(kernel_name, backing)] = statistics.extras.get(
                "complete_sets_scanned", 0
            )
    assert streams[("bigint", "ram")] == streams[("packed", "ram")]
    assert streams[("packed", "ram")] == streams[("packed", "mmap")]
    assert scans[("bigint", "ram")] == scans[("packed", "ram")]
    assert scans[("packed", "ram")] == scans[("packed", "mmap")]
