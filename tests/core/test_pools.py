"""Tests for the Complete store and the Incomplete pools."""

import pytest

from repro.core.pools import CompleteStore, ListIncompletePool, PriorityIncompletePool
from repro.core.ranking import MaxRanking
from repro.core.tupleset import TupleSet
from repro.workloads.tourist import tourist_importance


def by_label(db, *labels):
    return TupleSet(db.tuple_by_label(label) for label in labels)


class TestCompleteStore:
    def test_add_and_membership(self, tourist_db):
        store = CompleteStore("Climates")
        ts = by_label(tourist_db, "c1", "a1")
        assert ts not in store
        store.add(ts)
        assert ts in store and len(store) == 1
        assert store.as_list() == [ts]

    def test_contains_superset_linear(self, tourist_db):
        store = CompleteStore("Climates")
        store.add(by_label(tourist_db, "c1", "a2", "s1"))
        assert store.contains_superset(by_label(tourist_db, "c1", "a2"))
        assert store.contains_superset(by_label(tourist_db, "c1", "s1"))
        assert not store.contains_superset(by_label(tourist_db, "c1", "s2"))

    def test_contains_superset_indexed_with_explicit_anchor(self, tourist_db):
        store = CompleteStore(anchor_relation=None, use_index=True)
        result = by_label(tourist_db, "c1", "a2", "s1")
        store.add(result)
        probe = by_label(tourist_db, "c1", "a2")
        anchor = tourist_db.tuple_by_label("c1")
        assert store.contains_superset(probe, anchor=anchor)
        other_anchor = tourist_db.tuple_by_label("c2")
        assert not store.contains_superset(by_label(tourist_db, "c2"), anchor=other_anchor)

    def test_indexed_probe_scans_fewer_sets(self, tourist_db):
        linear = CompleteStore("Climates", use_index=False)
        indexed = CompleteStore("Climates", use_index=True)
        for labels in (("c1", "a1"), ("c1", "a2", "s1"), ("c2", "s3"), ("c2", "s4")):
            linear.add(by_label(tourist_db, *labels))
            indexed.add(by_label(tourist_db, *labels))
        probe = by_label(tourist_db, "c3")
        anchor = tourist_db.tuple_by_label("c3")
        linear.contains_superset(probe, anchor=anchor)
        indexed.contains_superset(probe, anchor=anchor)
        assert indexed.statistics.sets_scanned < linear.statistics.sets_scanned

    def test_indexed_probe_falls_back_to_full_scan_without_anchor(self, tourist_db):
        store = CompleteStore(anchor_relation=None, use_index=True)
        store.add(by_label(tourist_db, "c1", "a1"))
        # No anchor tuple available: the probe still works (full scan).
        assert store.contains_superset(by_label(tourist_db, "a1"))


class TestListIncompletePool:
    def test_add_pop_and_membership(self, tourist_db):
        pool = ListIncompletePool("Climates")
        first = by_label(tourist_db, "c1")
        second = by_label(tourist_db, "c2")
        pool.add(first)
        pool.add(second)
        assert len(pool) == 2 and bool(pool)
        assert first in pool
        assert pool.pop() == first
        assert first not in pool
        assert pool.pop() == second
        assert not pool

    def test_pop_empty_raises(self, tourist_db):
        with pytest.raises(IndexError):
            ListIncompletePool("Climates").pop()

    def test_duplicate_add_is_ignored(self, tourist_db):
        pool = ListIncompletePool("Climates")
        ts = by_label(tourist_db, "c1")
        pool.add(ts)
        pool.add(ts)
        assert len(pool) == 1

    def test_paper_extraction_order(self, tourist_db):
        """New candidates are processed before older entries, as in Table 3."""
        pool = ListIncompletePool("Climates", extraction="paper")
        a = by_label(tourist_db, "c1")
        b = by_label(tourist_db, "c2")
        pool.add(a)
        pool.add(b)
        assert pool.pop() == a
        fresh1 = by_label(tourist_db, "c1", "a2")
        fresh2 = by_label(tourist_db, "c1", "s2")
        pool.add(fresh1)
        pool.add(fresh2)
        assert pool.as_list() == [fresh1, fresh2, b]
        assert pool.pop() == fresh1

    def test_fifo_extraction_order(self, tourist_db):
        pool = ListIncompletePool("Climates", extraction="fifo")
        a, b = by_label(tourist_db, "c1"), by_label(tourist_db, "c2")
        pool.add(a)
        pool.add(b)
        assert pool.pop() == a
        c = by_label(tourist_db, "c1", "a2")
        pool.add(c)
        assert pool.as_list() == [b, c]

    def test_lifo_extraction_order(self, tourist_db):
        pool = ListIncompletePool("Climates", extraction="lifo")
        a, b = by_label(tourist_db, "c1"), by_label(tourist_db, "c2")
        pool.add(a)
        pool.add(b)
        assert pool.pop() == b

    def test_invalid_extraction_order(self):
        with pytest.raises(ValueError):
            ListIncompletePool("Climates", extraction="random")

    def test_replace_keeps_position(self, tourist_db):
        pool = ListIncompletePool("Climates")
        a = by_label(tourist_db, "c1", "a2")
        b = by_label(tourist_db, "c2")
        pool.add(a)
        pool.add(b)
        merged = by_label(tourist_db, "c1", "a2", "s1")
        pool.replace(a, merged)
        assert pool.as_list() == [merged, b]

    def test_replace_with_existing_member_just_drops_old(self, tourist_db):
        pool = ListIncompletePool("Climates")
        a = by_label(tourist_db, "c1", "a2")
        b = by_label(tourist_db, "c1", "a2", "s1")
        pool.add(a)
        pool.add(b)
        pool.replace(a, b)
        assert pool.as_list() == [b]

    def test_replace_of_absent_member_raises(self, tourist_db):
        pool = ListIncompletePool("Climates")
        with pytest.raises(KeyError):
            pool.replace(by_label(tourist_db, "c1"), by_label(tourist_db, "c2"))

    def test_candidates_with_index_filters_by_anchor_tuple(self, tourist_db):
        pool = ListIncompletePool("Climates", use_index=True)
        a = by_label(tourist_db, "c1", "a2")
        b = by_label(tourist_db, "c2", "s3")
        pool.add(a)
        pool.add(b)
        probe = by_label(tourist_db, "c1", "s2")
        assert pool.candidates(probe) == [a]
        probe2 = by_label(tourist_db, "c3")
        assert pool.candidates(probe2) == []

    def test_candidates_without_index_returns_all(self, tourist_db):
        pool = ListIncompletePool("Climates", use_index=False)
        a = by_label(tourist_db, "c1", "a2")
        b = by_label(tourist_db, "c2", "s3")
        pool.add(a)
        pool.add(b)
        assert set(pool.candidates(by_label(tourist_db, "c3"))) == {a, b}

    def test_statistics_are_tracked(self, tourist_db):
        pool = ListIncompletePool("Climates")
        a = by_label(tourist_db, "c1")
        pool.add(a)
        pool.candidates(a)
        pool.pop()
        stats = pool.statistics.as_dict()
        assert stats["additions"] == 1
        assert stats["removals"] == 1
        assert stats["sets_scanned"] == 1
        assert stats["peak_size"] == 1


class TestPriorityIncompletePool:
    @pytest.fixture
    def ranking(self):
        return MaxRanking(tourist_importance())

    def test_pop_returns_highest_ranked(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        low = by_label(tourist_db, "c1")       # imp 1
        high = by_label(tourist_db, "c3")      # imp 3
        middle = by_label(tourist_db, "c2")    # imp 2
        for ts in (low, high, middle):
            pool.add(ts)
        assert pool.peek() == high
        assert pool.peek_score() == 3.0
        assert pool.pop() == high
        assert pool.pop() == middle
        assert pool.pop() == low

    def test_peek_on_empty_pool(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        assert pool.peek() is None and pool.peek_score() is None
        with pytest.raises(IndexError):
            pool.pop()

    def test_replace_reranks(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        low = by_label(tourist_db, "c1")
        middle = by_label(tourist_db, "c2")
        pool.add(low)
        pool.add(middle)
        # Merging c1 with the 4-star hotel lifts it above c2.
        boosted = by_label(tourist_db, "c1", "a1")
        pool.replace(low, boosted)
        assert pool.pop() == boosted

    def test_duplicate_add_ignored(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        ts = by_label(tourist_db, "c1")
        pool.add(ts)
        pool.add(ts)
        assert len(pool) == 1

    def test_candidates_with_index(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking, use_index=True)
        a = by_label(tourist_db, "c1", "a2")
        b = by_label(tourist_db, "c2", "s3")
        pool.add(a)
        pool.add(b)
        assert pool.candidates(by_label(tourist_db, "c1")) == [a]

    def test_as_list_is_rank_ordered(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        for label in ("c1", "c2", "c3"):
            pool.add(by_label(tourist_db, label))
        ordered = pool.as_list()
        assert [ranking(ts) for ts in ordered] == [3.0, 2.0, 1.0]

    def test_replace_of_absent_member_raises(self, tourist_db, ranking):
        pool = PriorityIncompletePool("Climates", ranking)
        with pytest.raises(KeyError):
            pool.replace(by_label(tourist_db, "c1"), by_label(tourist_db, "c2"))
