"""Tests for the execution-trace harness (Table 3 reproduction)."""

import pytest

from repro.core.trace import format_trace, trace_incremental_fd
from repro.workloads.tourist import TABLE3_TRACE


class TestTraceRecording:
    def test_reproduces_table3_exactly(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        assert len(trace.snapshots) == len(TABLE3_TRACE)
        for label, incomplete, complete in TABLE3_TRACE:
            snapshot = trace.snapshot(label)
            assert snapshot.incomplete_labels() == incomplete, label
            assert snapshot.complete_labels() == complete, label

    def test_iterations_equal_results(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        assert trace.iterations == 6
        assert len(trace.results) == 6

    def test_anchor_recorded(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, 1)
        assert trace.anchor == "Accommodations"

    def test_unknown_snapshot_label_raises(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        with pytest.raises(KeyError):
            trace.snapshot("Iteration 99")

    def test_trace_with_index_enabled_matches(self, tourist_db):
        plain = trace_incremental_fd(tourist_db, "Climates", use_index=False)
        indexed = trace_incremental_fd(tourist_db, "Climates", use_index=True)
        assert [ts.labels() for ts in plain.results] == [
            ts.labels() for ts in indexed.results
        ]


class TestTraceFormatting:
    def test_rendered_trace_contains_all_columns(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        rendered = format_trace(trace)
        assert "Initialization" in rendered
        for iteration in range(1, 7):
            assert f"Iteration {iteration}" in rendered
        assert "{a1, c1}" in rendered
        assert "Incomplete" in rendered and "Complete" in rendered

    def test_max_columns_limits_output(self, tourist_db):
        trace = trace_incremental_fd(tourist_db, "Climates")
        rendered = format_trace(trace, max_columns=2)
        assert "Iteration 1" in rendered
        assert "Iteration 2" not in rendered
