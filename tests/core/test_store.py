"""Tests of the dual-indexed store layer (:mod:`repro.core.store`)."""

from __future__ import annotations

import pytest

from repro.core.pools import (
    CompleteStore as ReferenceCompleteStore,
    ListIncompletePool as ReferenceIncompletePool,
)
from repro.core.store import (
    CompleteStore,
    ListIncompletePool,
    PoolStatistics,
    PriorityIncompletePool,
    record_store_statistics,
)
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.tupleset import TupleSet
from repro.workloads.generators import star_database
from repro.workloads.tourist import tourist_database


def _jcc_sets(database):
    """Every JCC set the engine produces for anchor R_1."""
    return list(incremental_fd(database, database.relation_names[0]))


class TestCompleteStoreDualIndex:
    def _populated(self, use_index):
        database = tourist_database()
        catalog = database.catalog()
        results = _jcc_sets(database)
        store = CompleteStore("Climates", use_index=use_index)
        for result in results:
            store.add(result.attach_catalog(catalog))
        return database, catalog, results, store

    @pytest.mark.parametrize("use_index", [False, True])
    def test_contains_superset_matches_reference(self, use_index):
        database, catalog, results, store = self._populated(use_index)
        reference = ReferenceCompleteStore("Climates", use_index=False)
        for result in results:
            reference.add(result)
        probes = [TupleSet.singleton(t, catalog=catalog) for t in database.tuples()]
        probes += [result for result in results]
        probes += [
            results[0].union(results[1]),
            TupleSet.empty(catalog=catalog),
        ]
        for probe in probes:
            anchor = probe.tuple_from("Climates")
            assert store.contains_superset(probe, anchor=anchor) == (
                reference.contains_superset(probe)
            ), f"diverges on {probe!r}"

    def test_indexed_probe_scans_fewer_sets(self):
        _, _, results, indexed = self._populated(use_index=True)
        _, _, _, plain = self._populated(use_index=False)
        for store in (indexed, plain):
            for result in results:
                store.contains_superset(result, anchor=result.tuple_from("Climates"))
        assert indexed.statistics.sets_scanned < plain.statistics.sets_scanned
        assert plain.statistics.full_scans > 0
        assert indexed.statistics.full_scans == 0
        assert indexed.statistics.bucket_probes > 0

    def test_relation_group_prefilter_skips_non_supersets(self):
        database = tourist_database()
        catalog = database.catalog()
        store = CompleteStore("Climates", use_index=True)
        c1 = database.tuple_by_label("c1")
        a1 = database.tuple_by_label("a1")
        s2 = database.tuple_by_label("s2")
        store.add(TupleSet.of(c1, a1, catalog=catalog))
        # Probe {c1, s2}: the stored set shares the anchor c1 but its relation
        # set {Climates, Attractions} cannot contain {Climates, Sites}, so the
        # group is skipped without a subset test.
        probe = TupleSet.of(c1, s2, catalog=catalog)
        assert not store.contains_superset(probe, anchor=c1)
        assert store.statistics.bucket_probes == 1
        assert store.statistics.sets_scanned == 0


class TestIncompletePoolSemantics:
    """The indexed pool preserves the paper's positional list semantics."""

    def _singletons(self, database, labels):
        return [TupleSet.singleton(database.tuple_by_label(label)) for label in labels]

    @pytest.mark.parametrize("extraction", ["paper", "fifo", "lifo"])
    def test_extraction_orders_match_reference(self, extraction):
        database = tourist_database()
        sets = self._singletons(database, ["c1", "c2", "c3"])
        new = ListIncompletePool("Climates", extraction=extraction)
        reference = ReferenceIncompletePool("Climates", extraction=extraction)
        for tuple_set in sets:
            new.add(tuple_set)
            reference.add(tuple_set)
        produced = []
        while new:
            popped = new.pop()
            assert popped == reference.pop()
            produced.append(popped)
        assert len(produced) == 3

    def test_replace_preserves_position(self):
        database = tourist_database()
        catalog = database.catalog()
        c1, c2, c3 = self._singletons(database, ["c1", "c2", "c3"])
        pool = ListIncompletePool("Climates", use_index=True)
        for tuple_set in (c1, c2, c3):
            pool.add(tuple_set.attach_catalog(catalog))
        grown = c2.with_tuple(database.tuple_by_label("s3"))
        pool.replace(c2.attach_catalog(catalog), grown.attach_catalog(catalog))
        assert pool.as_list()[1] == grown
        assert grown in pool
        assert c2 not in pool

    def test_candidates_uses_anchor_bucket(self):
        database = tourist_database()
        catalog = database.catalog()
        c1, c2 = self._singletons(database, ["c1", "c2"])
        pool = ListIncompletePool("Climates", use_index=True)
        pool.add(c1.attach_catalog(catalog))
        pool.add(c2.attach_catalog(catalog))
        bucket = pool.candidates(c1.attach_catalog(catalog))
        assert bucket == [c1]
        assert pool.statistics.sets_scanned == 1
        assert pool.statistics.bucket_probes == 1
        assert pool.statistics.full_scans == 0


class TestPriorityPool:
    def test_extraction_by_rank_with_insertion_tiebreak(self):
        database = tourist_database()
        ranking = lambda ts: float(len(ts))  # noqa: E731
        pool = PriorityIncompletePool("Climates", ranking, use_index=True)
        c1 = TupleSet.singleton(database.tuple_by_label("c1"))
        pair = c1.with_tuple(database.tuple_by_label("a1"))
        c2 = TupleSet.singleton(database.tuple_by_label("c2"))
        pool.add(c1)
        pool.add(pair)
        pool.add(c2)
        assert pool.peek_score() == 2.0
        assert pool.pop() == pair
        assert pool.pop() == c1  # tie with c2 broken by insertion order
        assert pool.pop() == c2


class TestStatisticsPlumbing:
    def test_pool_statistics_has_index_counters(self):
        statistics = PoolStatistics()
        as_dict = statistics.as_dict()
        assert as_dict["bucket_probes"] == 0
        assert as_dict["full_scans"] == 0
        assert "sets_scanned" in as_dict

    def test_record_store_statistics_accumulates_into_extras(self):
        statistics = FDStatistics()
        store = CompleteStore("Climates")
        store.add(TupleSet.empty())
        record_store_statistics(statistics, ("complete", store))
        record_store_statistics(statistics, ("complete", store))
        assert statistics.extras["complete_additions"] == 2

    def test_incremental_fd_reports_store_counters(self):
        database = star_database(spokes=3, tuples_per_relation=3, hub_domain=2, seed=4)
        plain = FDStatistics()
        list(incremental_fd(database, database.relation_names[0], statistics=plain))
        indexed = FDStatistics()
        list(
            incremental_fd(
                database,
                database.relation_names[0],
                use_index=True,
                statistics=indexed,
            )
        )
        for statistics in (plain, indexed):
            assert "incomplete_sets_scanned" in statistics.extras
            assert "complete_sets_scanned" in statistics.extras

        def scanned(statistics):
            return (
                statistics.extras["incomplete_sets_scanned"]
                + statistics.extras["complete_sets_scanned"]
            )

        assert scanned(indexed) <= scanned(plain)
