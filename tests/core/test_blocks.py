"""Tests for block-based execution (Section 7)."""

import pytest

from repro.core.blocks import (
    BlockExecutionReport,
    block_based_full_disjunction,
    compare_block_sizes,
)
from repro.core.full_disjunction import full_disjunction
from repro.workloads.generators import chain_database

from tests.conftest import labels_of


class TestBlockBasedFullDisjunction:
    def test_results_are_identical_to_tuple_based(self, tourist_db):
        tuple_based, _ = block_based_full_disjunction(tourist_db, None)
        for block_size in (1, 2, 5, 100):
            block_based, report = block_based_full_disjunction(tourist_db, block_size)
            assert labels_of(block_based) == labels_of(tuple_based)
            assert report.block_size == block_size
            assert report.results == 6

    def test_report_fields(self, tourist_db):
        _, report = block_based_full_disjunction(tourist_db, 4)
        assert report.tuple_reads > 0
        assert report.block_reads > 0
        assert report.scan_passes > 0
        assert report.io_requests == report.block_reads
        as_dict = report.as_dict()
        assert as_dict["block_size"] == 4

    def test_tuple_based_report_counts_tuple_reads_as_io(self, tourist_db):
        _, report = block_based_full_disjunction(tourist_db, None)
        assert report.block_reads == 0
        assert report.io_requests == report.tuple_reads

    def test_larger_blocks_mean_fewer_io_requests(self, tourist_db):
        _, small = block_based_full_disjunction(tourist_db, 1)
        _, large = block_based_full_disjunction(tourist_db, 4)
        assert large.io_requests < small.io_requests

    def test_block_reads_scale_inversely_with_block_size(self):
        database = chain_database(relations=3, tuples_per_relation=10, domain_size=4, seed=1)
        _, by_two = block_based_full_disjunction(database, 2)
        _, by_ten = block_based_full_disjunction(database, 10)
        assert by_two.tuple_reads == by_ten.tuple_reads
        assert by_two.block_reads > by_ten.block_reads
        assert by_two.block_reads <= -(-by_two.tuple_reads // 2) * 1  # ceil bound per scan


class TestCompareBlockSizes:
    def test_reports_one_entry_per_block_size(self, tourist_db):
        reports = compare_block_sizes(tourist_db, [None, 2, 4])
        assert [report.block_size for report in reports] == [None, 2, 4]
        assert all(isinstance(report, BlockExecutionReport) for report in reports)

    def test_all_runs_produce_the_same_results(self, tourist_db):
        reports = compare_block_sizes(tourist_db, [None, 1, 3])
        assert len({report.results for report in reports}) == 1

    def test_results_match_plain_full_disjunction(self, tourist_db):
        reports = compare_block_sizes(tourist_db, [2])
        assert reports[0].results == len(full_disjunction(tourist_db))
