"""``FDStatistics.merge``: deterministic extras merging.

Cross-process statistics merging (the sharded backend) ships every worker's
``extras`` dict through ``merge``; numeric values must accumulate and
everything else must resolve deterministically (last writer wins) — the old
implementation raised ``TypeError`` when a numeric value met a non-numeric
one and summed booleans into meaningless integers.
"""

from __future__ import annotations

from repro.core.incremental import FDStatistics


def _with_extras(**extras):
    statistics = FDStatistics()
    statistics.extras.update(extras)
    return statistics


class TestNumericExtras:
    def test_numbers_accumulate(self):
        merged = _with_extras(scans=3, ratio=0.5).merge(
            _with_extras(scans=4, ratio=0.25)
        )
        assert merged.extras["scans"] == 7
        assert merged.extras["ratio"] == 0.75

    def test_missing_keys_start_from_zero(self):
        merged = FDStatistics().merge(_with_extras(scans=5))
        assert merged.extras["scans"] == 5


class TestNonNumericExtras:
    def test_strings_are_last_writer_wins(self):
        merged = _with_extras(backend="serial").merge(_with_extras(backend="sharded"))
        assert merged.extras["backend"] == "sharded"

    def test_incoming_string_is_kept_not_dropped(self):
        merged = FDStatistics().merge(_with_extras(note="worker-3"))
        assert merged.extras["note"] == "worker-3"

    def test_booleans_overwrite_instead_of_summing(self):
        merged = _with_extras(indexed=True).merge(_with_extras(indexed=True))
        assert merged.extras["indexed"] is True
        merged.merge(_with_extras(indexed=False))
        assert merged.extras["indexed"] is False

    def test_numeric_over_string_does_not_raise(self):
        merged = _with_extras(value="n/a").merge(_with_extras(value=3))
        assert merged.extras["value"] == 3

    def test_string_over_numeric_does_not_raise(self):
        merged = _with_extras(value=3).merge(_with_extras(value="n/a"))
        assert merged.extras["value"] == "n/a"


class TestMergeIsDeterministic:
    def test_three_way_merge_order_independence_for_numbers(self):
        parts = [_with_extras(scans=i) for i in (1, 2, 4)]
        forward = FDStatistics()
        for part in parts:
            forward.merge(part)
        backward = FDStatistics()
        for part in reversed(parts):
            backward.merge(part)
        assert forward.extras["scans"] == backward.extras["scans"] == 7

    def test_counters_still_accumulate(self):
        first, second = FDStatistics(results=2), FDStatistics(results=3)
        assert first.merge(second).results == 5
