"""Tests for ranking functions (Section 5)."""

import pytest

from repro.core.ranking import (
    CDeterminedRanking,
    MaxRanking,
    SumRanking,
    enumerate_connected_subsets,
    enumerate_connected_subsets_containing,
    importance_function,
    paper_example_ranking,
    top_k_by_exhaustive_ranking,
    validate_importance_spec,
)
from repro.core.full_disjunction import full_disjunction
from repro.core.tupleset import TupleSet
from repro.relational.errors import RankingError
from repro.workloads.tourist import tourist_importance


def by_label(db, *labels):
    return TupleSet(db.tuple_by_label(label) for label in labels)


class TestImportanceFunction:
    def test_none_uses_tuple_importance(self, tourist_db):
        relation = tourist_db.relation("Climates")
        imp = importance_function(None)
        assert imp(relation.tuple_by_label("c1")) == 0.0

    def test_dict_lookup(self, tourist_db):
        imp = importance_function({"c1": 2.5, "c2": 1.0})
        assert imp(tourist_db.tuple_by_label("c1")) == 2.5
        assert imp(tourist_db.tuple_by_label("c2")) == 1.0

    def test_missing_label_raises_without_default(self, tourist_db):
        """A typo'd importance map must error, not silently score 0."""
        imp = importance_function({"c1": 2.5})
        with pytest.raises(RankingError, match="c2"):
            imp(tourist_db.tuple_by_label("c2"))

    def test_explicit_default_opts_back_into_unlisted_labels(self, tourist_db):
        imp = importance_function({"c1": 2.5}, default=0.0)
        assert imp(tourist_db.tuple_by_label("c1")) == 2.5
        assert imp(tourist_db.tuple_by_label("c2")) == 0.0

    def test_callable_passthrough(self, tourist_db):
        imp = importance_function(lambda t: 7.0)
        assert imp(tourist_db.tuple_by_label("c3")) == 7.0

    def test_invalid_spec_raises(self):
        with pytest.raises(RankingError):
            importance_function(42)


class TestMaxRanking:
    def test_score_is_maximum_importance(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        assert ranking(by_label(tourist_db, "c1", "a1")) == 4.0
        assert ranking(by_label(tourist_db, "c2", "s3")) == 2.0

    def test_empty_set_scores_minus_infinity(self):
        assert MaxRanking({})(TupleSet.empty()) == float("-inf")

    def test_is_monotonically_1_determined(self):
        ranking = MaxRanking({})
        assert ranking.c == 1 and ranking.monotone
        assert ranking.is_monotonically_c_determined
        ranking.require_monotonically_c_determined()

    def test_monotone_under_inclusion(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        small = by_label(tourist_db, "c1")
        big = by_label(tourist_db, "c1", "a1")
        assert ranking(small) <= ranking(big)


class TestSumRanking:
    def test_score_is_sum(self, tourist_db):
        ranking = SumRanking(tourist_importance())
        assert ranking(by_label(tourist_db, "c1", "a2", "s1")) == 1.0 + 3.0 + 1.0

    def test_not_c_determined(self):
        ranking = SumRanking({})
        assert ranking.c is None
        assert not ranking.is_monotonically_c_determined
        with pytest.raises(RankingError):
            ranking.require_monotonically_c_determined()


class TestCDeterminedRanking:
    def test_rejects_non_positive_c(self):
        with pytest.raises(RankingError):
            CDeterminedRanking(0, lambda subset: 0.0)

    def test_scores_by_best_connected_subset(self, tourist_db):
        imp = importance_function(tourist_importance())
        pair_sum = CDeterminedRanking(2, lambda subset: sum(imp(t) for t in subset))
        # Best connected pair in {c1, a2, s1} is (a2, s1) or (c1, a2): 3 + 1 = 4.
        assert pair_sum(by_label(tourist_db, "c1", "a2", "s1")) == 4.0

    def test_monotone_under_inclusion(self, tourist_db):
        imp = importance_function(tourist_importance())
        pair_sum = CDeterminedRanking(2, lambda subset: sum(imp(t) for t in subset))
        small = by_label(tourist_db, "c1", "a2")
        big = by_label(tourist_db, "c1", "a2", "s1")
        assert pair_sum(small) <= pair_sum(big)

    def test_disconnected_subsets_are_not_scored(self, tourist_db):
        imp = importance_function(tourist_importance())
        # a1 and s3 are not connected through shared non-null attributes,
        # but schema-connectivity is what counts: Accommodations and Sites do
        # share attributes, so any pair of their tuples is "connected".
        pair_sum = CDeterminedRanking(2, lambda subset: sum(imp(t) for t in subset))
        assert pair_sum(by_label(tourist_db, "a1", "s3")) == 5.0

    def test_paper_example_ranking_is_3_determined(self, tourist_db):
        ranking = paper_example_ranking(tourist_importance())
        assert ranking.c == 3 and ranking.monotone
        # For {c1, a1}: best of imp(t1) + imp(t2)*imp(t3) over tuples {1, 4}
        # is 4 + 4*4 = 20.
        assert ranking(by_label(tourist_db, "c1", "a1")) == 20.0


class TestEnumerateConnectedSubsets:
    def test_size_one_enumerates_anchor_singletons(self, tourist_db):
        subsets = list(enumerate_connected_subsets(tourist_db, "Climates", 1))
        assert {ts.labels() for ts in subsets} == {
            frozenset({"c1"}),
            frozenset({"c2"}),
            frozenset({"c3"}),
        }

    def test_size_two_contains_only_jcc_pairs_with_anchor(self, tourist_db):
        subsets = list(enumerate_connected_subsets(tourist_db, "Climates", 2))
        assert frozenset({"c1", "a1"}) in {ts.labels() for ts in subsets}
        assert frozenset({"c2", "a1"}) not in {ts.labels() for ts in subsets}
        for ts in subsets:
            assert ts.is_jcc
            assert len(ts) <= 2
            assert ts.contains_tuple_from("Climates")

    def test_every_jcc_subset_up_to_size_c_is_enumerated(self, tourist_db):
        subsets = {ts.labels() for ts in enumerate_connected_subsets(tourist_db, "Climates", 3)}
        assert frozenset({"c1", "a2", "s1"}) in subsets
        assert frozenset({"c1", "s2"}) in subsets

    def test_invalid_size_raises(self, tourist_db):
        with pytest.raises(RankingError):
            list(enumerate_connected_subsets(tourist_db, "Climates", 0))


class TestValidateImportanceSpec:
    def _full_map(self, tourist_db):
        return {t.label: 1.0 for t in tourist_db.tuples()}

    def test_complete_map_passes(self, tourist_db):
        validate_importance_spec(tourist_db, self._full_map(tourist_db))

    def test_typod_key_is_rejected_even_with_a_default(self, tourist_db):
        spec = self._full_map(tourist_db)
        spec["cl1"] = spec.pop("c1")  # the typo scores the intended tuple wrongly
        with pytest.raises(RankingError, match="cl1"):
            validate_importance_spec(tourist_db, spec)
        with pytest.raises(RankingError, match="cl1"):
            validate_importance_spec(tourist_db, spec, default=0.0)

    def test_missing_label_is_rejected_without_a_default(self, tourist_db):
        spec = self._full_map(tourist_db)
        del spec["s2"]
        with pytest.raises(RankingError, match="s2"):
            validate_importance_spec(tourist_db, spec)
        validate_importance_spec(tourist_db, spec, default=0.0)  # opt-out

    def test_non_dict_specs_always_pass(self, tourist_db):
        validate_importance_spec(tourist_db, None)
        validate_importance_spec(tourist_db, lambda t: 1.0)


class TestEnumerateConnectedSubsetsContaining:
    def test_matches_the_unbounded_enumeration_filtered_by_tuple(self, tourist_db):
        """The bounded variant is exactly 'subsets containing t' of Lines 3-4."""
        for anchor_name in tourist_db.relation_names:
            for size in (1, 2, 3):
                full = {
                    ts.labels()
                    for ts in enumerate_connected_subsets(tourist_db, anchor_name, size)
                }
                for t in tourist_db.relation(anchor_name):
                    bounded = {
                        ts.labels()
                        for ts in enumerate_connected_subsets_containing(
                            tourist_db, t, size
                        )
                    }
                    assert bounded == {
                        labels for labels in full if t.label in labels
                    }

    def test_every_subset_contains_the_tuple_and_is_jcc(self, tourist_db):
        t = tourist_db.tuple_by_label("a2")
        subsets = list(enumerate_connected_subsets_containing(tourist_db, t, 3))
        assert subsets, "a2 joins with climates and sites"
        for ts in subsets:
            assert t in ts
            assert ts.is_jcc
            assert len(ts) <= 3

    def test_size_one_is_the_singleton(self, tourist_db):
        t = tourist_db.tuple_by_label("c1")
        subsets = list(enumerate_connected_subsets_containing(tourist_db, t, 1))
        assert [ts.labels() for ts in subsets] == [frozenset({"c1"})]

    def test_invalid_size_raises(self, tourist_db):
        t = tourist_db.tuple_by_label("c1")
        with pytest.raises(RankingError):
            list(enumerate_connected_subsets_containing(tourist_db, t, 0))


class TestExhaustiveTopK:
    def test_matches_manual_sort(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        results = full_disjunction(tourist_db)
        top = top_k_by_exhaustive_ranking(results, ranking, 2)
        assert [ranking(ts) for ts in top] == [4.0, 3.0]

    def test_k_larger_than_result(self, tourist_db):
        ranking = MaxRanking(tourist_importance())
        results = full_disjunction(tourist_db)
        assert len(top_k_by_exhaustive_ranking(results, ranking, 99)) == 6
