"""Tests for tuple sets and the JCC predicate."""

import pytest

from repro.core.tupleset import TupleSet, jcc
from repro.relational.nulls import NULL
from repro.relational.relation import Relation
from repro.relational.database import Database


@pytest.fixture
def db(tourist_db):
    return tourist_db


def by_label(db, *labels):
    return TupleSet(db.tuple_by_label(label) for label in labels)


class TestConstructionAndContainerProtocol:
    def test_of_and_singleton_and_empty(self, db):
        c1 = db.tuple_by_label("c1")
        assert len(TupleSet.of(c1)) == 1
        assert len(TupleSet.singleton(c1)) == 1
        assert len(TupleSet.empty()) == 0

    def test_membership_iteration_and_len(self, db):
        ts = by_label(db, "c1", "a1")
        assert db.tuple_by_label("c1") in ts
        assert db.tuple_by_label("c2") not in ts
        assert len(ts) == 2
        assert {t.label for t in ts} == {"c1", "a1"}

    def test_equality_and_hash_ignore_order(self, db):
        first = by_label(db, "c1", "a1")
        second = by_label(db, "a1", "c1")
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1

    def test_subset_superset(self, db):
        small = by_label(db, "c1")
        big = by_label(db, "c1", "a1")
        assert small.issubset(big) and big.issuperset(small)
        assert small <= big and small < big
        assert not big.issubset(small)

    def test_labels_and_sort_key_and_repr(self, db):
        ts = by_label(db, "c1", "a1")
        assert ts.labels() == frozenset({"c1", "a1"})
        assert ts.sort_key() == (("Accommodations", "a1"), ("Climates", "c1"))
        assert repr(ts) == "{a1, c1}"

    def test_total_size_counts_attribute_cells(self, db):
        ts = by_label(db, "c1", "a1")  # 2 + 4 attributes
        assert ts.total_size() == 6


class TestRelationAndAttributeViews:
    def test_relations_and_tuple_from(self, db):
        ts = by_label(db, "c1", "a1")
        assert ts.relations == {"Climates", "Accommodations"}
        assert ts.tuple_from("Climates").label == "c1"
        assert ts.tuple_from("Sites") is None
        assert ts.contains_tuple_from("Accommodations")
        assert not ts.contains_tuple_from("Sites")

    def test_attribute_values_merge_non_nulls(self, db):
        ts = by_label(db, "c1", "s2")  # s2 has City = NULL
        assert ts.attribute_value("Country") == "Canada"
        assert ts.attribute_value("City") is NULL
        assert "Site" in ts.attributes and "Climate" in ts.attributes


class TestJCCPredicate:
    def test_empty_and_singletons_are_jcc(self, db):
        assert TupleSet.empty().is_jcc
        assert by_label(db, "c1").is_jcc

    def test_paper_results_are_jcc(self, db):
        for labels in (("c1", "a1"), ("c1", "a2", "s1"), ("c1", "s2"), ("c2", "s3")):
            assert by_label(db, *labels).is_jcc

    def test_conflicting_shared_value_is_not_join_consistent(self, db):
        ts = by_label(db, "c2", "a1")  # UK vs Canada on Country
        assert not ts.is_join_consistent
        assert not ts.is_jcc

    def test_null_shared_value_is_not_join_consistent(self, db):
        ts = by_label(db, "a1", "s2")  # s2.City is null, a1.City = Toronto
        assert not ts.is_join_consistent

    def test_two_tuples_of_same_relation_are_not_connected(self, db):
        ts = by_label(db, "c1", "c2")
        assert not ts.is_connected
        assert not ts.is_jcc

    def test_disconnected_relations_are_not_connected(self):
        left = Relation.from_rows("L", ["A"], [["x"]])
        right = Relation.from_rows("R", ["B"], [["x"]])
        db = Database([left, right])
        ts = TupleSet(db.tuples())
        assert not ts.is_connected

    def test_connectivity_may_go_through_intermediate_relation(self):
        # L(A) - M(A,B) - R(B): {l, r} alone is disconnected, {l, m, r} is not.
        left = Relation.from_rows("L", ["A"], [["x"]])
        middle = Relation.from_rows("M", ["A", "B"], [["x", "y"]])
        right = Relation.from_rows("R", ["B"], [["y"]])
        db = Database([left, middle, right])
        l1, m1, r1 = list(db.tuples())
        assert not TupleSet.of(l1, r1).is_connected
        assert TupleSet.of(l1, m1, r1).is_jcc

    def test_jcc_helper_function(self, db):
        assert jcc([db.tuple_by_label("c1"), db.tuple_by_label("a1")])
        assert not jcc([db.tuple_by_label("c1"), db.tuple_by_label("a3")])


class TestDerivedSets:
    def test_with_tuple_and_union_and_difference(self, db):
        base = by_label(db, "c1")
        grown = base.with_tuple(db.tuple_by_label("a1"))
        assert grown.labels() == {"c1", "a1"}
        assert base.labels() == {"c1"}  # immutability
        assert grown.with_tuple(db.tuple_by_label("a1")) is grown
        union = base.union(by_label(db, "s2"))
        assert union.labels() == {"c1", "s2"}
        assert grown.difference(base).labels() == {"a1"}

    def test_restrict_to_relations(self, db):
        ts = by_label(db, "c1", "a2", "s1")
        assert ts.restrict_to_relations({"Climates", "Sites"}).labels() == {"c1", "s1"}


class TestCanAbsorb:
    def test_absorbs_consistent_connected_tuple(self, db):
        assert by_label(db, "c1").can_absorb(db.tuple_by_label("a1"))

    def test_rejects_same_relation_tuple(self, db):
        assert not by_label(db, "c1").can_absorb(db.tuple_by_label("c2"))

    def test_rejects_inconsistent_tuple(self, db):
        assert not by_label(db, "c1", "a1").can_absorb(db.tuple_by_label("s1"))

    def test_rejects_unconnected_tuple(self):
        left = Relation.from_rows("L", ["A"], [["x"]])
        right = Relation.from_rows("R", ["B"], [["y"]])
        db = Database([left, right])
        l1, r1 = list(db.tuples())
        assert not TupleSet.singleton(l1).can_absorb(r1)

    def test_member_tuple_is_trivially_absorbable(self, db):
        ts = by_label(db, "c1")
        assert ts.can_absorb(db.tuple_by_label("c1"))

    def test_empty_set_absorbs_anything(self, db):
        assert TupleSet.empty().can_absorb(db.tuple_by_label("a3"))

    def test_null_shared_attribute_blocks_absorption(self, db):
        # s2 has a null City; a1 provides City=Toronto: the pair is inconsistent.
        assert not by_label(db, "c1", "s2").can_absorb(db.tuple_by_label("a1"))


class TestUnionIsJcc:
    def test_union_of_overlapping_results(self, db):
        first = by_label(db, "c1", "a2")
        second = by_label(db, "c1", "s1")
        assert first.union_is_jcc(second)
        assert second.union_is_jcc(first)

    def test_union_with_conflicting_relation_tuples(self, db):
        first = by_label(db, "c1", "a1")
        second = by_label(db, "c1", "a2")
        assert not first.union_is_jcc(second)

    def test_union_with_value_conflict(self, db):
        first = by_label(db, "c1")
        second = by_label(db, "c2", "s3")
        assert not first.union_is_jcc(second)

    def test_union_without_shared_attributes_is_rejected(self):
        left = Relation.from_rows("L", ["A"], [["x"]])
        right = Relation.from_rows("R", ["B"], [["y"]])
        db = Database([left, right])
        l1, r1 = list(db.tuples())
        assert not TupleSet.singleton(l1).union_is_jcc(TupleSet.singleton(r1))

    def test_union_with_empty_set(self, db):
        ts = by_label(db, "c1", "a1")
        assert ts.union_is_jcc(TupleSet.empty())
        assert TupleSet.empty().union_is_jcc(ts)

    def test_union_matches_direct_jcc_computation(self, db):
        sets = [
            by_label(db, "c1", "a2"),
            by_label(db, "c1", "s1"),
            by_label(db, "c1", "s2"),
            by_label(db, "c2", "s3"),
            by_label(db, "c3"),
        ]
        for first in sets:
            for second in sets:
                expected = first.union(second).is_jcc
                assert first.union_is_jcc(second) == expected


class TestMaximalJccSubsetWith:
    """Footnote 3: the unique maximal JCC subset of ``T ∪ {t_b}`` containing ``t_b``."""

    def test_drops_inconsistent_and_same_relation_tuples(self, db):
        base = by_label(db, "c1", "a1")
        candidate = db.tuple_by_label("a2")
        result = base.maximal_jcc_subset_with(candidate)
        assert result.labels() == {"c1", "a2"}

    def test_result_can_be_a_singleton(self, db):
        base = by_label(db, "c1", "a1")
        result = base.maximal_jcc_subset_with(db.tuple_by_label("a3"))
        assert result.labels() == {"a3"}

    def test_keeps_only_connected_component_of_candidate(self):
        # L(A) - M(A,B) - R(B); drop M and L must go too when extending with
        # an R-tuple that is inconsistent with M.
        left = Relation.from_rows("L", ["A"], [["x"]])
        middle = Relation.from_rows("M", ["A", "B"], [["x", "y"]])
        right = Relation.from_rows("R", ["B"], [["y"], ["z"]])
        db = Database([left, middle, right])
        l1 = left.tuples[0]
        m1 = middle.tuples[0]
        r_z = right.tuples[1]  # B = z, inconsistent with m1 (B = y)
        base = TupleSet.of(l1, m1)
        result = base.maximal_jcc_subset_with(r_z)
        assert result.labels() == {r_z.label}

    def test_result_is_always_jcc_and_contains_candidate(self, db):
        base = by_label(db, "c1", "a2", "s1")
        for label in ("a1", "a3", "s2", "s3", "c2"):
            candidate = db.tuple_by_label(label)
            result = base.maximal_jcc_subset_with(candidate)
            assert candidate in result
            assert result.is_jcc

    def test_result_is_maximal(self, db):
        base = by_label(db, "c1", "a2", "s1")
        candidate = db.tuple_by_label("s2")
        result = base.maximal_jcc_subset_with(candidate)
        # No dropped tuple could be added back.
        for t in base:
            if t not in result:
                assert not result.can_absorb(t)
