"""Resumable query sessions: pause/resume equivalence for all four engines.

The satellite guarantee: a :class:`~repro.service.session.QuerySession`
paused and resumed at *arbitrary* points emits the exact sequence a fresh
serial run emits, for every engine.  Randomized chunk schedules (seeded) cut
the stream at adversarial places; the log must never recompute, reorder or
drop a result.
"""

from __future__ import annotations

import random

import pytest

from repro.core.approx import approx_full_disjunction_sets
from repro.core.approx_join import ExactMatchSimilarity, MinJoin
from repro.core.full_disjunction import full_disjunction_sets
from repro.core.priority import priority_incremental_fd
from repro.core.ranked_approx import ranked_approx_full_disjunction
from repro.core.ranking import MaxRanking
from repro.service.session import (
    ENGINES,
    QuerySession,
    ResultLog,
    StaleResultLog,
    open_session,
)
from repro.workloads.generators import chain_database, random_database, star_database
from repro.workloads.tourist import tourist_database


def _ranking():
    return MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 13))


def _join():
    return MinJoin(ExactMatchSimilarity())


def _workloads():
    yield "tourist", tourist_database()
    yield "chain", chain_database(
        relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
    )
    yield "star", star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=11)
    for seed in (0, 1):
        yield f"random-{seed}", random_database(
            relations=3,
            attributes=5,
            arity=3,
            tuples_per_relation=4,
            domain_size=2,
            null_rate=0.25,
            seed=seed,
        )


WORKLOADS = list(_workloads())
WORKLOAD_IDS = [name for name, _ in WORKLOADS]


def _serial_reference(engine, database):
    """The fresh serial run the paused/resumed session must reproduce."""
    if engine == "fd":
        return list(full_disjunction_sets(database, use_index=True))
    if engine == "priority":
        return list(priority_incremental_fd(database, _ranking(), use_index=True))
    if engine == "approx":
        return list(
            approx_full_disjunction_sets(database, _join(), 0.6, use_index=True)
        )
    return list(
        ranked_approx_full_disjunction(
            database, _join(), 0.6, _ranking(), use_index=True
        )
    )


def _open(engine, database):
    options = {"use_index": True}
    if engine in ("priority", "ranked_approx"):
        options["ranking"] = _ranking()
    if engine in ("approx", "ranked_approx"):
        options["join_function"] = _join()
        options["threshold"] = 0.6
    return open_session(database, engine, **options)


def _as_comparable(item):
    if isinstance(item, tuple):
        tuple_set, score = item
        return (tuple_set.labels(), score)
    return item.labels()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name,database", WORKLOADS, ids=WORKLOAD_IDS)
def test_random_pause_resume_matches_fresh_serial_run(engine, name, database):
    """The satellite criterion: arbitrary chunking never changes the stream."""
    reference = [_as_comparable(item) for item in _serial_reference(engine, database)]
    for seed in range(3):
        rng = random.Random((hash((engine, name)) & 0xFFFF) * 100 + seed)
        session = _open(engine, database)
        received = []
        while True:
            k = rng.choice([0, 1, 1, 2, 3, 5, 8])
            batch = session.next(k)
            received.extend(_as_comparable(item) for item in batch)
            if k > 0 and not batch:
                break
        assert received == reference, (
            f"engine {engine} on {name} diverged under chunk schedule {seed}"
        )
        assert session.exhausted
        session.close()


@pytest.mark.parametrize("engine", ENGINES)
def test_peek_does_not_consume(engine):
    database = tourist_database()
    session = _open(engine, database)
    first = session.peek()
    assert first is not None
    assert _as_comparable(session.next(1)[0]) == _as_comparable(first)
    session.close()


def test_session_next_is_incremental_not_recompute():
    """Pulling k answers must not run the engine to completion."""
    database = star_database(spokes=4, tuples_per_relation=5, hub_domain=2, seed=0)
    session = open_session(database, "fd", use_index=True)
    session.next(3)
    assert session.log.pulled == 3
    assert not session.log.complete
    session.close()


def test_fork_replays_the_shared_prefix_without_recompute():
    database = tourist_database()
    session = open_session(database, "fd", use_index=True)
    first_four = session.next(4)
    fork = session.fork()
    pulled_before = session.log.pulled
    assert fork.next(4) == first_four  # same objects, no new pulls
    assert session.log.pulled == pulled_before
    # The fork continues past the shared prefix by extending the same log.
    rest = fork.drain()
    assert session.next(10) == rest
    session.close()


def test_close_releases_the_owned_log_and_forbids_use():
    database = tourist_database()
    session = open_session(database, "fd")
    session.next(1)
    session.close()
    assert session.closed
    assert session.log.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.next(1)
    # Closing twice is fine.
    session.close()


def test_forked_session_close_does_not_close_the_shared_log():
    database = tourist_database()
    session = open_session(database, "fd")
    fork = session.fork()
    fork.close()
    assert not session.log.closed
    assert session.next(1)
    session.close()


def test_unknown_engine_is_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        open_session(tourist_database(), "mystery")


def test_priority_engine_requires_a_ranking():
    with pytest.raises(ValueError, match="ranking"):
        open_session(tourist_database(), "priority")


def test_negative_k_is_rejected():
    session = open_session(tourist_database(), "fd")
    with pytest.raises(ValueError, match="non-negative"):
        session.next(-1)
    session.close()


def test_statistics_accumulate_on_the_shared_log():
    database = tourist_database()
    session = open_session(database, "fd", use_index=True)
    session.drain()
    assert session.statistics is not None
    assert session.statistics.results > 0
    session.close()


class TestResultLog:
    def test_push_mode_log_is_live_until_finished(self):
        log = ResultLog()
        assert not log.complete
        log.append("a")
        cursor = QuerySession(log, owns_log=False)
        assert cursor.next(5) == ["a"]
        assert not cursor.exhausted  # more could still arrive
        log.finish()
        assert cursor.exhausted

    def test_append_after_finish_is_rejected(self):
        log = ResultLog()
        log.finish()
        with pytest.raises(RuntimeError, match="closed"):
            log.append("late")

    def test_append_with_active_source_is_rejected(self):
        log = ResultLog(source=iter("abc"))
        with pytest.raises(RuntimeError, match="active"):
            log.append("x")

    def test_exhaust_source_drains_and_completes(self):
        log = ResultLog(source=iter(range(5)))
        assert log.exhaust_source() == 5
        assert log.complete
        assert log.results == [0, 1, 2, 3, 4]

    def test_live_log_survives_source_exhaustion(self):
        log = ResultLog(source=iter(range(3)), live=True)
        log.exhaust_source()
        assert not log.complete  # a producer may still append
        log.append(3)
        assert log.results == [0, 1, 2, 3]

    def test_invalidation_keeps_the_prefix_but_refuses_the_tail(self):
        """Invalidation must never masquerade as graceful exhaustion."""
        log = ResultLog(source=iter(range(10)))
        cursor = QuerySession(log, owns_log=False)
        assert cursor.next(3) == [0, 1, 2]
        log.close("the computation was abandoned")
        assert not log.complete  # truncated is not exhausted
        assert cursor.next(0) == []  # the prefix stays readable
        replay = QuerySession(log, owns_log=False)
        assert replay.next(3) == [0, 1, 2]
        with pytest.raises(StaleResultLog, match="abandoned"):
            cursor.next(1)
        with pytest.raises(StaleResultLog):
            cursor.peek()
        assert not cursor.exhausted

    def test_closing_a_completed_log_is_not_an_invalidation(self):
        log = ResultLog(source=iter(range(2)))
        cursor = QuerySession(log, owns_log=False)
        assert cursor.next(5) == [0, 1]
        log.close()
        assert log.complete
        assert cursor.next(1) == []  # graceful exhaustion, no error
        assert cursor.exhausted
