"""Follower replicas: tailing, parity, lag, and read-only semantics."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.follower import (
    FollowerTailer,
    open_follower_server,
    run_follower_smoke,
    serve_follower,
)
from repro.service.server import open_durable_server
from repro.storage.store import RecoveryError
from repro.workloads.generators import star_database

from tests.storage._workload import op_request


def _run(coroutine):
    return asyncio.run(coroutine)


def _database():
    return star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=3)


def _primary(tmp_path, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("snapshot_every", None)
    return open_durable_server(_database(), str(tmp_path), **kwargs)


async def _fd_stream(state):
    opened = await state.handle_request({"op": "open", "engine": "fd"})
    assert opened.get("ok"), opened
    pulled = await state.handle_request(
        {"op": "next", "session": opened["session"], "k": 100_000}
    )
    return pulled["results"]


class TestTailing:
    def test_follower_applies_primary_mutations(self, tmp_path):
        primary = _primary(tmp_path)
        follower, tailer = open_follower_server(
            str(tmp_path), registry=MetricsRegistry()
        )
        assert follower.read_only is True

        async def scenario():
            for index in range(6):
                response = await primary.handle_request(
                    op_request(primary.database, index)
                )
                assert response.get("ok"), response
            primary.store.wal.sync()
            applied = tailer.poll_once()
            assert applied == 6
            assert await _fd_stream(follower) == await _fd_stream(primary)

        _run(scenario())
        assert tailer.records_applied == 6
        assert tailer.offset == primary.store.wal.offset
        assert tailer.lag_seconds >= 0.0

    def test_idle_poll_reports_zero_lag(self, tmp_path):
        primary = _primary(tmp_path)
        _, tailer = open_follower_server(str(tmp_path), registry=MetricsRegistry())
        tailer.lag_seconds = 3.0
        assert tailer.poll_once() == 0
        assert tailer.lag_seconds == 0.0

    def test_follower_sees_only_complete_frames(self, tmp_path):
        primary = _primary(tmp_path)
        follower, tailer = open_follower_server(
            str(tmp_path), registry=MetricsRegistry()
        )

        async def mutate():
            response = await primary.handle_request(
                op_request(primary.database, 0)
            )
            assert response.get("ok")

        _run(mutate())
        primary.store.wal.sync()
        # Simulate an in-flight append: a half-written frame after the
        # synced records must not advance the follower past the good end.
        with open(primary.store.wal.path, "ab") as handle:
            handle.write(b"RW\x00\x00")
        assert tailer.poll_once() == 1
        offset_after = tailer.offset
        assert tailer.poll_once() == 0
        assert tailer.offset == offset_after

    def test_missing_snapshot_is_refused(self, tmp_path):
        with pytest.raises(RecoveryError):
            open_follower_server(str(tmp_path / "absent"))


class TestReadOnlyServing:
    def test_follower_refuses_every_mutation(self, tmp_path):
        _primary(tmp_path)
        follower, _ = open_follower_server(str(tmp_path), registry=MetricsRegistry())

        async def scenario():
            for op in ("ingest", "retract", "update"):
                response = await follower.handle_request({"op": op, "tuples": []})
                assert response["ok"] is False
                assert response["read_only"] is True
                assert "read-only" in response["error"]
            snapshot = await follower.handle_request({"op": "snapshot"})
            assert snapshot["ok"] is False
            stats = await follower.handle_request({"op": "stats"})
            assert stats["read_only"] is True

        _run(scenario())

    def test_follower_serves_over_tcp_while_primary_ingests(self, tmp_path):
        from repro.service.server import fetch_first_k

        primary = _primary(tmp_path)

        async def scenario():
            server, state, tailer, task, port = await serve_follower(
                str(tmp_path), registry=MetricsRegistry(), poll_interval=0.01
            )
            try:
                before = await fetch_first_k("127.0.0.1", port, None, chunk=3)
                assert before == await _fd_stream(primary)
                response = await primary.handle_request(
                    op_request(primary.database, 0)
                )
                assert response.get("ok"), response
                primary.store.wal.sync()
                target = primary.store.wal.offset
                while tailer.offset < target:
                    await asyncio.sleep(0.01)
                after = await fetch_first_k("127.0.0.1", port, None, chunk=3)
                assert after == await _fd_stream(primary)
            finally:
                tailer.stop()
                await task
                server.close()
                await server.wait_closed()

        _run(scenario())


class TestFollowerSmoke:
    def test_run_follower_smoke_passes(self, tmp_path):
        primary = open_durable_server(
            _database(), str(tmp_path), registry=MetricsRegistry()
        )
        outcome = run_follower_smoke(primary, str(tmp_path), clients=3, k=5)
        assert len(outcome["per_client"]) == 3
        assert all(len(stream) == 5 for stream in outcome["per_client"])
        assert outcome["records_applied"] >= 1

    def test_smoke_catches_divergence(self, tmp_path):
        primary = open_durable_server(
            _database(), str(tmp_path), registry=MetricsRegistry()
        )
        # Tamper with the primary's database behind the WAL's back (a direct
        # removal, never logged): the smoke must fail — either as client
        # parity divergence or, earlier, as the replayed generation token
        # refusing to match the tampered primary's.
        source = next(iter(primary.database.relations[0]))
        primary.database.remove_tuple(source.relation_name, source.label)
        with pytest.raises((AssertionError, RecoveryError)):
            run_follower_smoke(primary, str(tmp_path), clients=1, k=5)


class TestTailerStats:
    def test_stats_shape(self, tmp_path):
        primary = _primary(tmp_path)
        state, tailer = open_follower_server(str(tmp_path), registry=MetricsRegistry())
        stats = tailer.stats()
        assert stats["wal_path"] == primary.store.wal.path
        assert stats["records_applied"] == 0
        assert isinstance(FollowerTailer(state, str(tmp_path)), FollowerTailer)
