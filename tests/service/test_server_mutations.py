"""The mutation surface of the JSON-lines server: retract, update, padded rows."""

from __future__ import annotations

import asyncio

from repro.core.full_disjunction import full_disjunction_sets
from repro.relational.nulls import is_null
from repro.relational.operators import combined_schema, pad_tuple_set
from repro.service.server import QueryServer, client_call, start_server
from repro.workloads.generators import star_database
from repro.workloads.tourist import tourist_database


def _run(coroutine):
    return asyncio.run(coroutine)


def _server(seed=1):
    database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=seed)
    return database, QueryServer(database, use_index=True)


class TestRetractOp:
    def test_stream_sessions_observe_retract_events(self):
        async def scenario():
            database, server = _server()
            opened = await server.handle_request({"op": "open", "engine": "stream"})
            session = opened["session"]
            base = await server.handle_request(
                {"op": "next", "session": session, "k": 10_000}
            )
            victim = next(iter(database.relations[1]))
            outcome = await server.handle_request(
                {"op": "retract", "tuples": [[victim.relation_name, victim.label]]}
            )
            assert outcome["ok"]
            assert outcome["applied"] == 1
            tail = await server.handle_request(
                {"op": "next", "session": session, "k": 10_000}
            )
            retracts = [r for r in tail["results"] if isinstance(r, dict)]
            assert len(retracts) == outcome["retracted"] > 0
            assert all(victim.label in r["retract"] for r in retracts)
            # The net served stream equals a recompute on the mutated database.
            emitted = [r for r in base["results"]]
            emitted += [r for r in tail["results"] if not isinstance(r, dict)]
            for r in retracts:
                emitted.remove(r["retract"])
            fresh = sorted(
                sorted(t.label for t in ts)
                for ts in full_disjunction_sets(database, use_index=True)
            )
            assert sorted(emitted) == fresh
            stats = await server.handle_request({"op": "stats"})
            assert stats["mutations_applied"] == 1

        _run(scenario())

    def test_retract_revalidates_untouched_cached_prefixes(self):
        async def scenario():
            database, server = _server()
            opened = await server.handle_request(
                {"op": "open", "engine": "fd", "use_index": True}
            )
            first = await server.handle_request(
                {"op": "next", "session": opened["session"], "k": 2}
            )
            covered = {label for labels in first["results"] for label in labels}
            victim = next(t for t in database.tuples() if t.label not in covered)
            outcome = await server.handle_request(
                {"op": "retract", "tuples": [[victim.relation_name, victim.label]]}
            )
            assert outcome["revalidated_queries"] == 1
            assert outcome["invalidated_queries"] == 0
            # A fresh identical open serves the same prefix without recompute.
            reopened = await server.handle_request(
                {"op": "open", "engine": "fd", "use_index": True}
            )
            assert reopened["cached"] is True
            again = await server.handle_request(
                {"op": "next", "session": reopened["session"], "k": 2}
            )
            assert again["results"] == first["results"]
            assert server.cache.stats()["misses"] == 1

        _run(scenario())

    def test_bad_targets_are_client_errors(self):
        async def scenario():
            _, server = _server()
            missing = await server.handle_request(
                {"op": "retract", "tuples": [["Nope", "x1"]]}
            )
            assert not missing["ok"] and "Nope" in missing["error"]
            malformed = await server.handle_request(
                {"op": "retract", "tuples": [["OnlyRelation"]]}
            )
            assert not malformed["ok"]
            assert "pairs" in malformed["error"]

        _run(scenario())


class TestUpdateOp:
    def test_update_retracts_and_reemits_on_the_stream(self):
        async def scenario():
            database, server = _server()
            opened = await server.handle_request({"op": "open", "engine": "stream"})
            session = opened["session"]
            await server.handle_request(
                {"op": "next", "session": session, "k": 10_000}
            )
            target = next(iter(database.relations[0]))
            outcome = await server.handle_request(
                {
                    "op": "update",
                    "tuples": [
                        [
                            target.relation_name,
                            target.label,
                            [f"{value}X" for value in target.values],
                        ]
                    ],
                }
            )
            assert outcome["ok"] and outcome["applied"] == 1
            assert outcome["retracted"] > 0
            # Updates append fresh tuples: cached prefixes cannot ride through.
            assert outcome["revalidated_queries"] == 0
            tail = await server.handle_request(
                {"op": "next", "session": session, "k": 10_000}
            )
            retracts = [r for r in tail["results"] if isinstance(r, dict)]
            emits = [r for r in tail["results"] if not isinstance(r, dict)]
            assert len(retracts) == outcome["retracted"]
            assert len(emits) == outcome["new_results"]
            live = database.relation(target.relation_name).tuple_by_label(
                target.label
            )
            assert live.values == tuple(f"{value}X" for value in target.values)

        _run(scenario())

    def test_malformed_update_is_rejected(self):
        async def scenario():
            _, server = _server()
            malformed = await server.handle_request(
                {"op": "update", "tuples": [["R", "label"]]}
            )
            assert not malformed["ok"] and "triples" in malformed["error"]
            wrong_arity = await server.handle_request(
                {"op": "update", "tuples": [["Hub", "h1", ["just-one-value", "x", "y"]]]}
            )
            assert not wrong_arity["ok"]

        _run(scenario())


class TestPaddedFormat:
    def test_padded_rows_render_nulls_and_match_table2(self):
        async def scenario():
            database = tourist_database()
            server = QueryServer(database, use_index=True)
            opened = await server.handle_request(
                {"op": "open", "engine": "fd", "use_index": True, "format": "padded"}
            )
            assert opened["format"] == "padded"
            reply = await server.handle_request(
                {"op": "next", "session": opened["session"], "k": 10_000}
            )
            schema = combined_schema(database.relations)
            by_labels = {}
            for ts in full_disjunction_sets(database, use_index=True):
                padded = pad_tuple_set(ts, schema)
                by_labels[tuple(sorted(t.label for t in ts))] = {
                    attribute: (None if is_null(value) else value)
                    for attribute, value in padded.items()
                }
            assert len(reply["results"]) == len(by_labels)
            for result in reply["results"]:
                assert set(result) == {"labels", "row"}
                assert result["row"] == by_labels[tuple(result["labels"])]
                # Nulls cross the wire as JSON null, not a sentinel string.
                assert all(
                    value is None or not is_null(value)
                    for value in result["row"].values()
                )
            # At least one row genuinely exercises null rendering.
            assert any(
                None in result["row"].values() for result in reply["results"]
            )

        _run(scenario())

    def test_padded_ranked_results_keep_scores(self):
        async def scenario():
            database, server = _server()
            importance = {t.label: 1.0 for t in database.tuples()}
            opened = await server.handle_request(
                {
                    "op": "open",
                    "engine": "ranked",
                    "importance": importance,
                    "format": "padded",
                }
            )
            assert opened["ok"] and opened["ranked"]
            reply = await server.handle_request(
                {"op": "next", "session": opened["session"], "k": 3}
            )
            for result in reply["results"]:
                assert set(result) == {"labels", "row", "score"}
                assert result["score"] == 1.0

        _run(scenario())

    def test_padded_format_over_tcp(self):
        async def scenario():
            database = tourist_database()
            server, _, port = await start_server(database)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    opened = await client_call(
                        reader,
                        writer,
                        {"op": "open", "engine": "fd", "format": "padded"},
                    )
                    reply = await client_call(
                        reader,
                        writer,
                        {"op": "next", "session": opened["session"], "k": 2},
                    )
                    assert all(
                        set(result) == {"labels", "row"}
                        for result in reply["results"]
                    )
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()

        _run(scenario())


class TestOpenValidation:
    def test_unknown_options_are_rejected_per_engine(self):
        async def scenario():
            _, server = _server()
            cases = [
                ({"op": "open", "engine": "fd", "threshold": 0.5}, "threshold"),
                ({"op": "open", "engine": "approx", "importance": {}}, "importance"),
                ({"op": "open", "engine": "stream", "k": 3}, "k"),
                # The live stream log is built with the *server's* index
                # setting; a per-query use_index would be silently ignored.
                ({"op": "open", "engine": "stream", "use_index": True}, "use_index"),
                ({"op": "open", "engine": "ranked", "similarity": "edit"}, "similarity"),
            ]
            for request, offending in cases:
                reply = await server.handle_request(request)
                assert not reply["ok"], request
                assert offending in reply["error"]
                assert "unknown option" in reply["error"]

        _run(scenario())

    def test_unknown_format_and_engine_and_op(self):
        async def scenario():
            _, server = _server()
            bad_format = await server.handle_request(
                {"op": "open", "engine": "fd", "format": "csv"}
            )
            assert not bad_format["ok"] and "format" in bad_format["error"]
            bad_engine = await server.handle_request(
                {"op": "open", "engine": "nope"}
            )
            assert not bad_engine["ok"] and "engine" in bad_engine["error"]
            bad_op = await server.handle_request({"op": "frobnicate"})
            assert not bad_op["ok"] and "unknown op" in bad_op["error"]

        _run(scenario())

    def test_valid_options_still_pass(self):
        async def scenario():
            _, server = _server()
            good = await server.handle_request(
                {
                    "op": "open",
                    "engine": "fd",
                    "use_index": True,
                    "initialization": "singletons",
                }
            )
            assert good["ok"]

        _run(scenario())
