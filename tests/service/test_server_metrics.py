"""Observability through the serving stack: live series, surfaces, routers.

Every suite hands the servers *explicit* registries so the assertions are
isolated from the process-default one (and from each other).
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import MetricsRegistry, PhaseTracer, use_tracer
from repro.service.server import QueryServer, server_stats
from repro.service.sharding import ShardedQueryServer, ShardHandle
from repro.workloads.tourist import tourist_database


def _run(coroutine):
    return asyncio.run(coroutine)


def _server(enabled=True):
    registry = MetricsRegistry(enabled=enabled)
    return QueryServer(tourist_database(), registry=registry), registry


async def _drain_one_session(state, k=3, engine="fd"):
    opened = await state.handle_request({"op": "open", "engine": engine})
    assert opened["ok"]
    await state.handle_request({"op": "next", "session": opened["session"], "k": k})
    return opened["session"]


class TestServerMetrics:
    def test_requests_and_latency_are_recorded_per_op(self):
        state, registry = _server()

        async def scenario():
            await _drain_one_session(state)
            await state.handle_request({"op": "warp"})

        _run(scenario())
        requests = registry.family("repro_requests_total")
        assert requests.labels(op="open").value == 1
        assert requests.labels(op="next").value == 1
        assert requests.labels(op="warp").value == 1
        errors = registry.family("repro_request_errors_total")
        assert errors.labels(op="warp").value == 1
        assert errors.labels(op="open").value == 0
        latency = registry.family("repro_request_latency_seconds")
        assert latency.labels(op="open").count == 1
        assert latency.labels(op="next").count == 1

    def test_engine_latency_histograms_by_phase(self):
        state, registry = _server()

        async def scenario():
            session = await _drain_one_session(state, engine="fd")
            await state.handle_request({"op": "next", "session": session, "k": 2})

        _run(scenario())
        engine_latency = registry.family("repro_engine_latency_seconds")
        assert engine_latency.labels(engine="fd", phase="open").count == 1
        assert engine_latency.labels(engine="fd", phase="next").count == 2

    def test_cache_counters_flow_into_the_registry(self):
        state, registry = _server()

        async def scenario():
            for _ in range(3):
                await state.handle_request({"op": "open", "engine": "fd"})

        _run(scenario())
        assert registry.family("repro_cache_misses_total").value == 1
        assert registry.family("repro_cache_hits_total").value == 2
        assert registry.family("repro_cache_entries").value == 1

    def test_session_gauge_follows_open_and_close(self):
        state, registry = _server()

        async def scenario():
            opened = await state.handle_request({"op": "open", "engine": "fd"})
            mid = registry.family("repro_live_sessions").value
            await state.handle_request(
                {"op": "close", "session": opened["session"]}
            )
            return mid

        mid = _run(scenario())
        assert mid == 1
        assert registry.family("repro_live_sessions").value == 0

    def test_ingest_sets_the_lag_gauge_and_invalidations_count(self):
        state, registry = _server()

        async def scenario():
            await state.handle_request({"op": "open", "engine": "fd"})
            return await state.handle_request(
                {"op": "ingest", "tuples": [["Climates", ["norway", "cold"]]]}
            )

        response = _run(scenario())
        assert response["ok"]
        lag = registry.family("repro_ingest_lag_seconds")
        assert 0 <= lag.value < 5.0
        assert registry.family("repro_cache_invalidations_total").value == 1

    def test_stats_detail_metrics_ships_the_snapshot(self):
        state, registry = _server()

        async def scenario():
            await _drain_one_session(state)
            plain = await state.handle_request({"op": "stats"})
            detailed = await state.handle_request(
                {"op": "stats", "detail": "metrics"}
            )
            return plain, detailed

        plain, detailed = _run(scenario())
        assert "metrics" not in plain
        assert plain["uptime_seconds"] >= 0
        assert plain["epoch"] == 0
        snapshot = detailed["metrics"]
        json.dumps(snapshot)  # wire-safe
        names = {family["name"] for family in snapshot["families"]}
        assert "repro_request_latency_seconds" in names
        assert "repro_cache_hits_total" in names

    def test_render_metrics_and_health_surfaces(self):
        state, registry = _server()

        async def scenario():
            await _drain_one_session(state)

        _run(scenario())
        page = state.render_metrics()
        assert 'repro_requests_total{op="open"} 1' in page
        assert "repro_request_latency_seconds_bucket" in page
        health = state.health()
        assert health["status"] == "ok"
        assert health["sessions"] == 1
        assert health["epoch"] == 0
        assert "kernel" in health and health["uptime_seconds"] >= 0

    def test_server_stats_helper_is_the_stats_op_shape(self):
        state, _ = _server()

        async def scenario():
            await _drain_one_session(state)
            return await state.handle_request({"op": "stats"})

        wire = _run(scenario())
        helper = server_stats(state)
        assert set(helper) | {"ok"} == set(wire)
        assert helper["requests"] == wire["requests"]

    def test_disabled_registry_serves_identically_and_renders_empty(self):
        enabled_state, _ = _server(enabled=True)
        disabled_state, _ = _server(enabled=False)

        async def scenario(state):
            session = await _drain_one_session(state, k=1000)
            reply = await state.handle_request(
                {"op": "next", "session": session, "k": 1000}
            )
            return reply

        on = _run(scenario(enabled_state))
        off = _run(scenario(disabled_state))
        assert on == off
        assert disabled_state.render_metrics() == ""
        assert disabled_state.health()["status"] == "ok"

    def test_request_spans_land_on_the_active_tracer(self):
        state, _ = _server()
        tracer = PhaseTracer()

        async def scenario():
            with use_tracer(tracer):
                await _drain_one_session(state)

        _run(scenario())
        names = [event["name"] for event in tracer.events()]
        assert "op.open" in names
        assert "op.next" in names
        assert "cache.open" in names


class _MetricShard(ShardHandle):
    """An in-process shard with its own registry, like a real shard process."""

    def __init__(self, index, database, registry):
        super().__init__(index, process=None, host="", port=0)
        self.state = QueryServer(database, registry=registry)

    async def call(self, request):
        self.requests += 1
        return await self.state.handle_request(request)


def _metric_router(shards=2):
    database = tourist_database()
    shard_registries = [MetricsRegistry(enabled=True) for _ in range(shards)]
    handles = [
        _MetricShard(index, database, registry)
        for index, registry in enumerate(shard_registries)
    ]
    router_registry = MetricsRegistry(enabled=True)
    router = ShardedQueryServer(handles, registry=router_registry)
    return router, handles, router_registry


class TestRouterMetrics:
    def test_stats_carries_the_router_level_aggregates(self):
        router, _, _ = _metric_router()

        async def scenario():
            opened = await router.handle_request({"op": "open", "engine": "fd"})
            await router.handle_request(
                {"op": "next", "session": opened["session"], "k": 2}
            )
            return await router.handle_request({"op": "stats"})

        stats = _run(scenario())
        assert stats["uptime_seconds"] >= 0
        assert stats["sessions_total"] == 1
        # open + next, as counted by the shard servers themselves (their
        # stats round trips excluded: they are counted on the *next* call).
        assert stats["requests_aggregate"] >= 2
        assert all(
            "server_requests" in entry for entry in stats["per_shard"]
        )

    def test_metrics_detail_merges_shard_registries_with_attribution(self):
        router, _, _ = _metric_router()

        async def scenario():
            for _ in range(2):
                await router.handle_request({"op": "open", "engine": "fd"})
            detailed = await router.handle_request(
                {"op": "stats", "detail": "metrics"}
            )
            page = await router.render_metrics()
            return detailed, page

        detailed, page = _run(scenario())
        json.dumps(detailed["metrics"])
        # Identical opens share one shard: its cache shows a hit, the other
        # stays at zero, and both replicas stay distinguishable by label.
        assert 'repro_router_requests_total{shard="router"} 3' in page
        hit_lines = [
            line
            for line in page.splitlines()
            if line.startswith("repro_cache_hits_total")
        ]
        assert len(hit_lines) == 2
        assert sorted(int(line.rsplit(" ", 1)[1]) for line in hit_lines) == [0, 1]
        assert 'shard="0"' in page and 'shard="1"' in page

    def test_busy_rejections_and_session_gauges(self):
        router, _, registry = _metric_router()
        router.max_sessions_per_shard = 1

        async def scenario():
            first = await router.handle_request({"op": "open", "engine": "fd"})
            refused = await router.handle_request({"op": "open", "engine": "fd"})
            return first, refused

        first, refused = _run(scenario())
        assert first["ok"] and refused.get("busy") is True
        assert registry.family("repro_router_busy_rejections_total").value == 1
        assert registry.family("repro_router_sessions").value == 1
        shard_gauge = registry.family("repro_router_shard_sessions")
        assert shard_gauge.labels(shard=first["shard"]).value == 1

    def test_health_reports_every_shard_alive(self):
        router, _, _ = _metric_router(shards=3)
        health = _run(router.health())
        assert health["status"] == "ok"
        assert [entry["alive"] for entry in health["shards"]] == [True] * 3
        assert health["uptime_seconds"] >= 0
