"""The LRU result-prefix cache and its generation-counter invalidation."""

from __future__ import annotations

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.service.cache import PrefixCache, database_generation
from repro.service.session import StaleResultLog
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import tourist_database


def _labels(items):
    return [ts.labels() for ts in items]


class TestGenerationToken:
    def test_stable_when_nothing_changes(self):
        database = tourist_database()
        database.catalog()
        assert database_generation(database) == database_generation(database)

    def test_append_moves_the_tuple_count_not_the_rebuild_count(self):
        database = tourist_database()
        database.catalog()
        before = database_generation(database)
        database.add_tuple("Climates", ["x", "cold"])
        after = database_generation(database)
        assert after != before
        assert after[0] == before[0]  # in-place catalog maintenance: no rebuild
        assert after[1] == before[1]  # appends are monotone: no epoch bump
        assert after[3] == before[3] + 1

    def test_removal_moves_only_the_epoch_and_the_count(self):
        database = tourist_database()
        database.catalog()
        before = database_generation(database)
        removed = database.relation("Climates").tuples[0]
        database.remove_tuple("Climates", removed.label)
        after = database_generation(database)
        assert after[0] == before[0]  # tombstoned in place: no rebuild
        assert after[1] == before[1] + 1
        assert after[3] == before[3] - 1

    def test_adding_a_relation_moves_the_token(self):
        from repro.relational.relation import Relation

        database = tourist_database()
        database.catalog()
        before = database_generation(database)
        extra = Relation("Extra", ["Z"])
        extra.add(["z1"])
        database.add_relation(extra)
        database.catalog()
        assert database_generation(database) != before


class TestPrefixCache:
    def test_identical_queries_share_one_log(self):
        database = tourist_database()
        cache = PrefixCache()
        first = cache.open(database, "fd", use_index=True)
        second = cache.open(database, "fd", use_index=True)
        assert cache.hits == 1 and cache.misses == 1
        assert first.log is second.log
        # The first client materializes; the second replays for free.
        a = first.next(4)
        pulled = first.log.pulled
        assert second.next(4) == a
        assert first.log.pulled == pulled

    def test_cached_stream_matches_serial(self):
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )
        serial = _labels(full_disjunction(database, use_index=True))
        cache = PrefixCache()
        cache.open(database, "fd", use_index=True).drain()
        warm = cache.open(database, "fd", use_index=True)
        assert _labels(warm.drain()) == serial
        assert cache.hits == 1

    def test_distinct_options_do_not_share(self):
        database = tourist_database()
        cache = PrefixCache()
        cache.open(database, "fd", use_index=True)
        cache.open(database, "fd", use_index=False)
        cache.open(database, "fd", use_index=True, initialization="previous-results")
        assert cache.misses == 3 and cache.hits == 0

    def test_ingest_invalidates_via_the_generation_counter(self):
        database = tourist_database()
        database.catalog()
        cache = PrefixCache()
        stale = cache.open(database, "fd", use_index=True)
        stale.drain()
        database.add_tuple("Climates", ["x", "cold"])
        fresh = cache.open(database, "fd", use_index=True)
        assert cache.misses == 2  # the old prefix was not reused
        assert cache.invalidations == 1
        assert fresh.log is not stale.log
        # The fresh log serves the post-ingest answer stream.
        assert _labels(fresh.drain()) == _labels(full_disjunction(database, use_index=True))

    def test_lru_eviction_closes_the_oldest_log(self):
        database = tourist_database()
        cache = PrefixCache(capacity=2)
        first = cache.open(database, "fd", use_index=True)
        cache.open(database, "fd", use_index=False)
        cache.open(database, "fd", initialization="previous-results")
        assert cache.evictions == 1
        assert first.log.closed

    def test_eviction_mid_read_raises_instead_of_truncating(self):
        """A client must never mistake an evicted stream for a finished one."""
        database = tourist_database()
        cache = PrefixCache(capacity=1)
        reader = cache.open(database, "fd", use_index=True)
        assert len(reader.next(2)) == 2
        cache.open(database, "fd", use_index=False)  # evicts the reader's log
        with pytest.raises(StaleResultLog, match="evicted"):
            reader.next(10)
        assert not reader.exhausted

    def test_eager_invalidate_after_mutation(self):
        """The serving ingest path: stale readers fail fast, reopens recompute."""
        database = tourist_database()
        cache = PrefixCache()
        reader = cache.open(database, "fd", use_index=True)
        reader.next(2)
        database.add_tuple("Climates", ["Iceland", "arctic"])
        assert cache.invalidate(database) == 1
        with pytest.raises(StaleResultLog, match="generation"):
            reader.next(10)
        reopened = cache.open(database, "fd", use_index=True)
        assert _labels(reopened.drain()) == _labels(
            full_disjunction(database, use_index=True)
        )

    def test_client_close_never_tears_down_the_shared_log(self):
        database = tourist_database()
        cache = PrefixCache()
        first = cache.open(database, "fd", use_index=True)
        first.next(2)
        first.close()
        second = cache.open(database, "fd", use_index=True)
        assert cache.hits == 1
        assert len(second.drain()) == 6

    def test_approx_queries_key_on_threshold_and_tag(self):
        from repro.core.approx_join import ExactMatchSimilarity, MinJoin

        database = tourist_database()
        cache = PrefixCache()
        join = MinJoin(ExactMatchSimilarity())
        cache.open(database, "approx", join_function=join, threshold=0.6,
                   cache_tag="exact")
        cache.open(database, "approx", join_function=join, threshold=0.6,
                   cache_tag="exact")
        cache.open(database, "approx", join_function=join, threshold=0.8,
                   cache_tag="exact")
        assert cache.hits == 1 and cache.misses == 2

    def test_cache_tag_shares_across_fresh_callable_instances(self):
        """The tag replaces callable identity: per-request MinJoin objects share."""
        from repro.core.approx_join import ExactMatchSimilarity, MinJoin

        database = tourist_database()
        cache = PrefixCache()
        first = cache.open(database, "approx",
                           join_function=MinJoin(ExactMatchSimilarity()),
                           threshold=0.6, cache_tag="minjoin-exact")
        second = cache.open(database, "approx",
                            join_function=MinJoin(ExactMatchSimilarity()),
                            threshold=0.6, cache_tag="minjoin-exact")
        assert cache.hits == 1 and cache.misses == 1
        assert first.log is second.log

    def test_untagged_callables_fragment_by_identity(self):
        database = tourist_database()
        cache = PrefixCache()
        from repro.core.approx_join import ExactMatchSimilarity, MinJoin

        cache.open(database, "approx",
                   join_function=MinJoin(ExactMatchSimilarity()), threshold=0.6)
        cache.open(database, "approx",
                   join_function=MinJoin(ExactMatchSimilarity()), threshold=0.6)
        assert cache.misses == 2  # safe default: unknown callables never alias

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PrefixCache(capacity=0)

    def test_clear_closes_everything(self):
        database = star_database(spokes=3, tuples_per_relation=3, hub_domain=2, seed=3)
        cache = PrefixCache()
        session = cache.open(database, "fd")
        cache.clear()
        assert len(cache) == 0
        assert session.log.closed

    def test_stats_shape(self):
        cache = PrefixCache()
        stats = cache.stats()
        assert set(stats) == {
            "entries", "capacity", "hits", "misses", "invalidations",
            "revalidations", "evictions",
        }
