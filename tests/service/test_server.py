"""The asyncio JSON-lines server: concurrent clients, parity, fairness."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.exec import AsyncBackend
from repro.service.server import (
    client_call,
    fetch_first_k,
    run_smoke,
    start_server,
)
from repro.service.session import open_session
from repro.workloads.generators import chain_database, star_database
from repro.workloads.streaming import streaming_chain_workload
from repro.workloads.tourist import tourist_database


def _serial_labels(database, use_index=True, k=None):
    out = []
    for tuple_set in full_disjunction_sets(database, use_index=use_index):
        out.append(sorted(t.label for t in tuple_set))
        if k is not None and len(out) == k:
            break
    return out


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(database, scenario):
    server, state, port = await start_server(database)
    try:
        return await scenario(state, port)
    finally:
        server.close()
        await server.wait_closed()


class TestServer:
    def test_four_concurrent_clients_match_serial(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        serial = _serial_labels(database)

        async def scenario(state, port):
            return await asyncio.gather(
                *(fetch_first_k("127.0.0.1", port, None, chunk=3) for _ in range(4))
            )

        per_client = _run(_with_server(database, scenario))
        assert len(per_client) == 4
        for received in per_client:
            assert received == serial

    def test_identical_queries_share_the_prefix_cache(self):
        database = tourist_database()

        async def scenario(state, port):
            await asyncio.gather(
                *(fetch_first_k("127.0.0.1", port, 4) for _ in range(3))
            )
            return state.cache.stats()

        stats = _run(_with_server(database, scenario))
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_first_k_then_resume_on_one_connection(self):
        database = chain_database(
            relations=3, tuples_per_relation=5, domain_size=3, null_rate=0.2, seed=7
        )
        serial = _serial_labels(database)

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer, {"op": "open", "engine": "fd", "use_index": True}
                )
                session = opened["session"]
                first = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 3}
                )
                peeked = await client_call(
                    reader, writer, {"op": "peek", "session": session}
                )
                rest = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 1000}
                )
                return first, peeked, rest
            finally:
                writer.close()
                await writer.wait_closed()

        first, peeked, rest = _run(_with_server(database, scenario))
        assert first["results"] == serial[:3]
        assert peeked["result"] == serial[3]
        assert first["results"] + rest["results"] == serial
        assert rest["exhausted"]

    def test_stream_sessions_observe_ingest(self):
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=3, seed=3
        )

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer, {"op": "open", "engine": "stream"}
                )
                session = opened["session"]
                base = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 10_000}
                )
                arrival = workload.arrivals[0]
                ingested = await client_call(
                    reader,
                    writer,
                    {
                        "op": "ingest",
                        "tuples": [[arrival.relation_name, list(arrival.values)]],
                    },
                )
                fresh = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 10_000}
                )
                return base, ingested, fresh
            finally:
                writer.close()
                await writer.wait_closed()

        base, ingested, fresh = _run(_with_server(workload.database, scenario))
        assert ingested["ok"] and ingested["applied"] == 1
        assert len(fresh["results"]) == ingested["new_results"]
        assert not any(r in base["results"] for r in fresh["results"])

    def test_ingest_invalidates_cached_fd_sessions(self):
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=2, seed=3
        )

        async def scenario(state, port):
            await fetch_first_k("127.0.0.1", port, None)
            arrival = workload.arrivals[0]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                await client_call(
                    reader,
                    writer,
                    {
                        "op": "ingest",
                        "tuples": [[arrival.relation_name, list(arrival.values)]],
                    },
                )
            finally:
                writer.close()
                await writer.wait_closed()
            after = await fetch_first_k("127.0.0.1", port, None)
            return state.cache.stats(), after

        stats, after = _run(_with_server(workload.database, scenario))
        assert stats["misses"] == 2  # the post-ingest open recomputed
        assert stats["invalidations"] == 1
        assert after == _serial_labels(workload.database)

    def test_in_flight_session_straddling_ingest_fails_fast(self):
        """No chimera streams: a half-consumed query dies at the generation
        change instead of mixing pre- and post-ingest results."""
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=2, seed=3
        )

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer, {"op": "open", "engine": "fd", "use_index": True}
                )
                session = opened["session"]
                prefix = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 2}
                )
                arrival = workload.arrivals[0]
                ingested = await client_call(
                    reader,
                    writer,
                    {
                        "op": "ingest",
                        "tuples": [[arrival.relation_name, list(arrival.values)]],
                    },
                )
                stale = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 1000}
                )
                reopened = await client_call(
                    reader, writer, {"op": "open", "engine": "fd", "use_index": True}
                )
                fresh = await client_call(
                    reader, writer,
                    {"op": "next", "session": reopened["session"], "k": 1000},
                )
                return prefix, ingested, stale, fresh
            finally:
                writer.close()
                await writer.wait_closed()

        prefix, ingested, stale, fresh = _run(
            _with_server(workload.database, scenario)
        )
        assert ingested["invalidated_queries"] == 1
        assert not stale["ok"] and "generation" in stale["error"]
        assert len(prefix["results"]) == 2
        # The reopened query serves exactly the post-ingest serial stream.
        assert fresh["results"] == _serial_labels(workload.database)

    def test_errors_are_reported_not_fatal(self):
        database = tourist_database()

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                bad_json = await client_call(reader, writer, {"op": "nonsense"})
                writer.write(b"this is not json\n")
                await writer.drain()
                garbled = json.loads(await reader.readline())
                missing = await client_call(
                    reader, writer, {"op": "next", "session": "nope", "k": 1}
                )
                still_alive = await client_call(reader, writer, {"op": "ping"})
                return bad_json, garbled, missing, still_alive
            finally:
                writer.close()
                await writer.wait_closed()

        bad_json, garbled, missing, still_alive = _run(
            _with_server(database, scenario)
        )
        assert not bad_json["ok"] and "unknown op" in bad_json["error"]
        assert not garbled["ok"] and "bad JSON" in garbled["error"]
        assert not missing["ok"] and "no session" in missing["error"]
        assert still_alive["ok"] and still_alive["pong"]

    def test_disconnect_releases_the_connections_sessions(self):
        """Dropping the socket without a close op must not leak sessions."""
        database = tourist_database()

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await client_call(reader, writer, {"op": "open", "engine": "fd"})
            await client_call(reader, writer, {"op": "open", "engine": "stream"})
            assert len(state._sessions) == 2
            writer.close()  # no 'close' ops — just drop the connection
            await writer.wait_closed()
            for _ in range(50):
                if not state._sessions:
                    break
                await asyncio.sleep(0.01)
            return len(state._sessions)

        assert _run(_with_server(database, scenario)) == 0

    def test_unknown_engine_is_refused(self):
        database = tourist_database()

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                return await client_call(
                    reader, writer, {"op": "open", "engine": "mystery"}
                )
            finally:
                writer.close()
                await writer.wait_closed()

        reply = _run(_with_server(database, scenario))
        assert not reply["ok"] and "unknown engine" in reply["error"]


class TestRankedServing:
    @staticmethod
    def _importance(database):
        from repro.service.server import smoke_importance_map

        return smoke_importance_map(database)

    def test_ranked_session_scores_match_an_in_process_top_k(self):
        from repro.core.priority import top_k
        from repro.core.ranking import MaxRanking

        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        importance = self._importance(database)
        expected = [
            {"labels": sorted(t.label for t in ts), "score": score}
            for ts, score in top_k(
                database, MaxRanking(importance), 5, use_index=True
            )
        ]

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked", "importance": importance},
                )
                assert opened["ok"] and opened["ranked"]
                first = await client_call(
                    reader, writer,
                    {"op": "next", "session": opened["session"], "k": 2},
                )
                peeked = await client_call(
                    reader, writer, {"op": "peek", "session": opened["session"]}
                )
                rest = await client_call(
                    reader, writer,
                    {"op": "next", "session": opened["session"], "k": 3},
                )
                return first, peeked, rest
            finally:
                writer.close()
                await writer.wait_closed()

        first, peeked, rest = _run(_with_server(database, scenario))
        assert first["results"] == expected[:2]
        assert peeked["result"] == expected[2]
        assert first["results"] + rest["results"] == expected

    def test_identical_importance_maps_share_the_cached_ranked_log(self):
        database = tourist_database()
        importance = self._importance(database)

        async def scenario(state, port):
            for _ in range(3):
                await fetch_first_k(
                    "127.0.0.1", port, 4, engine="ranked", importance=importance
                )
            return state.cache.stats()

        stats = _run(_with_server(database, scenario))
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_typod_importance_map_is_a_client_error_not_a_wrong_answer(self):
        database = tourist_database()
        importance = self._importance(database)
        importance["cl1"] = importance.pop("c1")  # the typo'd map

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                refused = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked", "importance": importance},
                )
                missing = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked",
                     "importance": {"c1": 1.0}},
                )
                not_a_map = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked", "importance": [1, 2]},
                )
                bad_value = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked",
                     "importance": {"c1": "four stars"}},
                )
                bare_default = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked", "default": 5.0},
                )
                still_alive = await client_call(reader, writer, {"op": "ping"})
                return (refused, missing, not_a_map, bad_value, bare_default,
                        still_alive)
            finally:
                writer.close()
                await writer.wait_closed()

        refused, missing, not_a_map, bad_value, bare_default, still_alive = _run(
            _with_server(database, scenario)
        )
        assert not refused["ok"] and "cl1" in refused["error"]
        assert not missing["ok"] and "no entry" in missing["error"]
        assert not not_a_map["ok"] and "label" in not_a_map["error"]
        assert not bad_value["ok"] and "numbers" in bad_value["error"]
        # A default without a map would be silently meaningless — refused.
        assert not bare_default["ok"] and "importance" in bare_default["error"]
        assert still_alive["ok"]

    def test_partial_importance_map_works_with_an_explicit_default(self):
        database = tourist_database()

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked",
                     "importance": {"a1": 9.0}, "default": 0.0},
                )
                top = await client_call(
                    reader, writer,
                    {"op": "next", "session": opened["session"], "k": 1},
                )
                return opened, top
            finally:
                writer.close()
                await writer.wait_closed()

        opened, top = _run(_with_server(database, scenario))
        assert opened["ok"]
        assert top["results"][0]["score"] == 9.0
        assert "a1" in top["results"][0]["labels"]

    def test_ingest_invalidates_ranked_cached_sessions_fail_fast(self):
        """StaleResultLog fail-fast semantics extend to ranked cursors."""
        workload = streaming_chain_workload(
            relations=3, base_tuples=4, arrivals=2, seed=3
        )
        database = workload.database
        importance_of = self._importance

        async def scenario(state, port):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                opened = await client_call(
                    reader, writer,
                    {"op": "open", "engine": "ranked",
                     "importance": importance_of(database), "default": 0.0},
                )
                session = opened["session"]
                prefix = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 2}
                )
                arrival = workload.arrivals[0]
                ingested = await client_call(
                    reader, writer,
                    {"op": "ingest",
                     "tuples": [[arrival.relation_name, list(arrival.values)]]},
                )
                stale = await client_call(
                    reader, writer, {"op": "next", "session": session, "k": 1000}
                )
                return prefix, ingested, stale
            finally:
                writer.close()
                await writer.wait_closed()

        prefix, ingested, stale = _run(_with_server(database, scenario))
        assert len(prefix["results"]) == 2
        assert ingested["invalidated_queries"] >= 1
        assert not stale["ok"] and "generation" in stale["error"]


class TestSmokeHarness:
    def test_run_smoke_passes_on_parity(self):
        outcome = run_smoke(tourist_database(), clients=4)
        assert outcome["clients"] == 4
        assert outcome["results_per_client"] == 6
        assert outcome["cache"]["hits"] >= 3

    def test_run_smoke_with_first_k(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=2)
        outcome = run_smoke(database, clients=5, k=7)
        assert outcome["results_per_client"] == 7

    def test_run_smoke_with_k_zero_is_a_clean_empty_parity(self):
        outcome = run_smoke(tourist_database(), clients=4, k=0)
        assert outcome["results_per_client"] == 0

    def test_run_smoke_ranked_parity(self):
        outcome = run_smoke(tourist_database(), clients=4, engine="ranked")
        assert outcome["engine"] == "ranked"
        assert outcome["results_per_client"] == 6
        assert outcome["cache"]["hits"] >= 3

    def test_run_smoke_ranked_first_k(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=2)
        outcome = run_smoke(database, clients=3, k=5, engine="ranked")
        assert outcome["results_per_client"] == 5

    def test_run_smoke_rejects_unknown_engines(self):
        with pytest.raises(ValueError, match="engine"):
            run_smoke(tourist_database(), clients=2, engine="mystery")


class TestAsyncFairness:
    def test_round_robin_keeps_sessions_within_one_step(self):
        """Strict fairness: no session leads a live peer by more than one."""
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        backend = AsyncBackend()
        sessions = [
            open_session(database, "fd", use_index=True, name=f"s{i}")
            for i in range(3)
        ]
        progress = []
        originals = [s.next for s in sessions]

        def tracking(index):
            def wrapped(k=1):
                batch = originals[index](k)
                if batch:
                    progress.append(index)
                return batch
            return wrapped

        for index, session in enumerate(sessions):
            session.next = tracking(index)
        try:
            results = backend.serve_first_k(sessions, 6)
        finally:
            for session in sessions:
                session.close()
        assert all(len(r) == 6 for r in results)
        counts = [0, 0, 0]
        for index in progress:
            counts[index] += 1
            assert max(counts) - min(counts) <= 1, (
                f"unfair interleaving: {counts}"
            )
        assert set(backend.steps) == {"s0", "s1", "s2"}

    def test_drive_yields_between_steps(self):
        """Concurrent drive() tasks interleave instead of running to completion."""
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=1)
        backend = AsyncBackend()
        order = []

        async def tracked(session, label, k):
            results = []
            while len(results) < k:
                batch = await backend.drive(session, 1)
                if not batch:
                    break
                results.extend(batch)
                order.append(label)
            return results

        async def scenario():
            sessions = [
                open_session(database, "fd", use_index=True, name=f"t{i}")
                for i in range(2)
            ]
            try:
                return await asyncio.gather(
                    tracked(sessions[0], "a", 5), tracked(sessions[1], "b", 5)
                )
            finally:
                for session in sessions:
                    session.close()

        first, second = asyncio.run(scenario())
        assert len(first) == len(second) == 5
        # Both labels appear in the first half of the trace: neither task
        # monopolized the loop for its whole prefix.
        assert {"a", "b"} <= set(order[:4])
