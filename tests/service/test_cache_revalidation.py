"""Epoch revalidation of cached prefixes, and the cache under memory pressure."""

from __future__ import annotations

import random

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.service.cache import PrefixCache
from repro.service.session import StaleResultLog
from repro.workloads.generators import random_database, star_database
from repro.workloads.tourist import tourist_database


def _key(tuple_set):
    return frozenset((t.relation_name, t.label, t.values) for t in tuple_set)


def _tuple_outside(database, prefix):
    """A live tuple contained in no result of ``prefix`` (None when covered)."""
    covered = set()
    for tuple_set in prefix:
        covered.update(tuple_set.tuples)
    for t in database.tuples():
        if t not in covered:
            return t
    return None


class TestEpochRevalidation:
    def test_untouched_prefix_rides_through_a_deletion(self):
        database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=0)
        cache = PrefixCache()
        first = cache.open(database, "fd", use_index=True)
        prefix = first.next(4)
        pulled = first.log.pulled
        victim = _tuple_outside(database, prefix)
        assert victim is not None
        database.remove_tuple(victim.relation_name, victim.label)
        second = cache.open(database, "fd", use_index=True)
        stats = cache.stats()
        assert stats["revalidations"] == 1
        assert stats["misses"] == 1  # no recomputation started
        assert stats["invalidations"] == 0
        assert second.next(4) == prefix
        # The prefix was served from memory: nothing new was pulled.
        assert second.log.pulled == pulled

    def test_revalidated_log_extends_with_a_fresh_tail_on_demand(self):
        database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=0)
        cache = PrefixCache()
        prefix = cache.open(database, "fd", use_index=True).next(4)
        victim = _tuple_outside(database, prefix)
        database.remove_tuple(victim.relation_name, victim.label)
        session = cache.open(database, "fd", use_index=True)
        everything = {_key(ts) for ts in session.drain()}
        fresh = {_key(ts) for ts in full_disjunction_sets(database, use_index=True)}
        assert everything == fresh

    def test_touched_prefix_is_invalidated(self):
        database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=0)
        cache = PrefixCache()
        prefix = cache.open(database, "fd", use_index=True).next(4)
        victim = next(iter(prefix[0]))
        database.remove_tuple(victim.relation_name, victim.label)
        cache.open(database, "fd", use_index=True)
        stats = cache.stats()
        assert stats["revalidations"] == 0
        assert stats["invalidations"] == 1
        assert stats["misses"] == 2

    def test_appends_still_invalidate(self):
        database = tourist_database()
        cache = PrefixCache()
        cache.open(database, "fd", use_index=True).next(3)
        database.add_tuple("Climates", ["x", "cold"])
        cache.open(database, "fd", use_index=True)
        assert cache.stats()["revalidations"] == 0
        assert cache.stats()["misses"] == 2

    def test_updates_invalidate_even_untouched_prefixes(self):
        # An update appends a fresh tuple, which can extend *any* result:
        # the deletions-only precondition (no ids issued) rightly fails.
        database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=0)
        cache = PrefixCache()
        prefix = cache.open(database, "fd", use_index=True).next(3)
        victim = _tuple_outside(database, prefix)
        database.update_tuple(
            victim.relation_name, victim.label,
            tuple(f"{v}*" for v in victim.values),
        )
        cache.open(database, "fd", use_index=True)
        assert cache.stats()["revalidations"] == 0
        assert cache.stats()["misses"] == 2

    def test_eager_revalidate_keeps_straddling_sessions_on_the_prefix(self):
        database = star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=0)
        cache = PrefixCache()
        session = cache.open(database, "fd", use_index=True)
        prefix = session.next(4)
        victim = _tuple_outside(database, prefix)
        database.remove_tuple(victim.relation_name, victim.label)
        outcome = cache.revalidate(database)
        assert outcome == {"revalidated": 1, "invalidated": 0}
        # The prefix stays readable; pulling beyond it fails fast until a
        # fresh open attaches the recomputation tail.
        fork = session.fork()
        assert fork.next(len(prefix)) == prefix
        with pytest.raises(StaleResultLog, match="revalidated"):
            fork.next(1000)
        reopened = cache.open(database, "fd", use_index=True)
        drained = {_key(ts) for ts in reopened.drain()}
        fresh = {_key(ts) for ts in full_disjunction_sets(database, use_index=True)}
        assert drained == fresh
        # ... and the once-stale fork now reads through the same log too.
        assert {_key(ts) for ts in fork.log.results} == fresh

    def test_second_deletion_revalidates_again(self):
        database = star_database(spokes=4, tuples_per_relation=5, hub_domain=2, seed=3)
        cache = PrefixCache()
        prefix = cache.open(database, "fd", use_index=True).next(3)
        first_victim = _tuple_outside(database, prefix)
        database.remove_tuple(first_victim.relation_name, first_victim.label)
        assert cache.open(database, "fd", use_index=True).next(3) == prefix
        second_victim = _tuple_outside(database, prefix)
        assert second_victim is not None
        database.remove_tuple(second_victim.relation_name, second_victim.label)
        session = cache.open(database, "fd", use_index=True)
        assert session.next(3) == prefix
        assert cache.stats()["revalidations"] == 2
        assert cache.stats()["misses"] == 1


@pytest.mark.parametrize("seed", [1, 4, 7, 12])
def test_randomized_revalidation_serves_only_fresh_serial_results(seed):
    """Randomized: whatever a revalidated session serves, a fresh run serves too."""
    rng = random.Random(seed)
    database = random_database(
        relations=3,
        attributes=5,
        arity=3,
        tuples_per_relation=5,
        domain_size=3,
        null_rate=0.2,
        seed=seed,
    )
    cache = PrefixCache()
    k = rng.randint(2, 6)
    session = cache.open(database, "fd", use_index=True)
    prefix = session.next(k)
    reopened = session
    for _ in range(3):
        # A victim outside everything materialized so far — once the log is
        # drained no such tuple exists (every tuple is in some result) and
        # deletions rightly stop revalidating.
        victim = _tuple_outside(database, reopened.log.results)
        if victim is None:
            break
        database.remove_tuple(victim.relation_name, victim.label)
        reopened = cache.open(database, "fd", use_index=True)
        served = reopened.next(k)
        fresh = {_key(ts) for ts in full_disjunction_sets(database, use_index=True)}
        # A deletion never invalidates a surviving result: everything the
        # revalidated prefix serves is a member of the fresh serial answer
        # set.
        assert {_key(ts) for ts in served} <= fresh
        assert cache.stats()["misses"] == 1
    assert cache.stats()["revalidations"] >= 1
    # Draining the (revalidated) log converges to exactly the fresh set.
    final = {_key(ts) for ts in reopened.log.results} | {
        _key(ts) for ts in reopened.drain()
    }
    fresh = {_key(ts) for ts in full_disjunction_sets(database, use_index=True)}
    assert final == fresh


class TestCacheUnderMemoryPressure:
    def test_forked_sessions_on_an_evicted_log_raise_stale(self):
        """The regression: eviction must not silently truncate shared logs."""
        database = tourist_database()
        cache = PrefixCache(capacity=1)
        first = cache.open(database, "fd", use_index=True)
        first.next(2)
        fork = first.fork()
        # A different query evicts the shared log (capacity 1).
        cache.open(database, "fd", use_index=False).next(1)
        assert cache.stats()["evictions"] == 1
        # The materialized prefix stays readable on every cursor...
        assert len(fork.next(2)) == 2
        # ... but the pending tail was abandoned: deeper pulls fail fast.
        with pytest.raises(StaleResultLog, match="evicted"):
            fork.next(1000)
        with pytest.raises(StaleResultLog, match="evicted"):
            first.next(1000)

    def test_evicted_entries_do_not_revalidate(self):
        database = star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=2)
        cache = PrefixCache(capacity=1)
        prefix = cache.open(database, "fd", use_index=True).next(2)
        cache.open(database, "fd", use_index=False).next(1)  # evicts
        victim = _tuple_outside(database, prefix)
        database.remove_tuple(victim.relation_name, victim.label)
        cache.open(database, "fd", use_index=True)
        # The evicted (closed) log is gone for good: a fresh run starts.
        assert cache.stats()["revalidations"] == 0
        assert cache.stats()["misses"] == 3
