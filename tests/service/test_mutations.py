"""Mutable streams: the tentpole equivalence for deletions and updates.

The invariant, per batch of any interleaving of arrivals, tombstone
deletions and in-place updates:

* the *net* delta event stream (emits minus retracts) of
  :func:`~repro.service.delta.incremental_replay_stream` equals the
  recompute reference :func:`~repro.workloads.streaming.replay_stream` —
  which diffs a full engine re-run per batch — at every checkpoint;
* on a deletions-only stream the net result set equals a full recompute on
  the post-deletion database *exactly*;
* every standing result is a join-consistent, connected set of live tuples,
  and every member of the final database's full disjunction is standing.
"""

from __future__ import annotations

import random

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.core.ranking import MaxRanking
from repro.service.delta import (
    DeltaSummary,
    StreamingFullDisjunction,
    incremental_replay_stream,
)
from repro.service.session import Retraction
from repro.workloads.generators import random_database
from repro.workloads.streaming import (
    Arrival,
    Removal,
    ResultEvent,
    StreamSummary,
    Update,
    hold_back_arrivals,
    inject_mutations,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)
from repro.workloads.tourist import tourist_database


def _key(tuple_set):
    return frozenset((t.relation_name, t.label, t.values) for t in tuple_set)


def _workload_factories():
    yield "chain", lambda: streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=6, seed=3
    )
    yield "star", lambda: streaming_star_workload(
        spokes=3, base_tuples=3, arrivals=6, seed=1
    )
    yield "tourist", lambda: hold_back_arrivals(tourist_database(), fraction=0.5)
    for seed in (0, 5, 9):
        yield f"random-{seed}", lambda seed=seed: hold_back_arrivals(
            random_database(
                relations=3,
                attributes=5,
                arity=3,
                tuples_per_relation=4,
                domain_size=2,
                null_rate=0.25,
                seed=seed,
            ),
            fraction=0.4,
        )


FACTORIES = list(_workload_factories())
FACTORY_IDS = [name for name, _ in FACTORIES]


def _checkpoints(events):
    """Per-arrival-point cumulative (standing, retracted) key sets."""
    standing = {}
    retracted_keys = set()
    marks = {}
    for event in events:
        if isinstance(event, ResultEvent):
            key = _key(event.tuple_set)
            if event.kind == "retract":
                standing.pop(key, None)
                retracted_keys.add(key)
            else:
                standing[key] = event
            marks[event.after_arrivals] = (
                set(standing),
                set(retracted_keys),
            )
    return set(standing), retracted_keys, marks


@pytest.mark.parametrize("batch_size", [1, 2])
@pytest.mark.parametrize("name,factory", FACTORIES, ids=FACTORY_IDS)
def test_mutated_delta_stream_equals_recompute_reference(name, factory, batch_size):
    """Arrivals + deletions + updates: net delta stream == recompute diff."""
    replay_workload, delta_workload = factory(), factory()
    ops = inject_mutations(replay_workload, mutations=3, seed=7)
    delta_ops = inject_mutations(delta_workload, mutations=3, seed=7)
    replay_summary, delta_summary = StreamSummary(), DeltaSummary()
    replay_events = list(
        replay_stream(
            replay_workload.database,
            ops,
            batch_size=batch_size,
            use_index=True,
            summary=replay_summary,
        )
    )
    delta_events = list(
        incremental_replay_stream(
            delta_workload.database,
            delta_ops,
            batch_size=batch_size,
            use_index=True,
            summary=delta_summary,
        )
    )

    replay_standing, replay_retracted, replay_marks = _checkpoints(replay_events)
    delta_standing, delta_retracted, delta_marks = _checkpoints(delta_events)
    assert delta_standing == replay_standing
    if batch_size == 1:
        # One op per batch: the streams agree retract for retract.
        assert delta_retracted == replay_retracted
        for point in set(replay_marks) & set(delta_marks):
            assert delta_marks[point] == replay_marks[point], (
                f"divergence after {point} ops"
            )
    else:
        # Multi-op batches may pass through intermediate states the atomic
        # per-batch recompute never sees (an arrival's result deleted later
        # in the same batch is emitted then retracted); the *net* standing
        # set still agrees at every checkpoint.
        assert delta_retracted >= replay_retracted
        for point in set(replay_marks) & set(delta_marks):
            assert delta_marks[point][0] == replay_marks[point][0], (
                f"divergence after {point} ops"
            )

    # Summaries carry the same net list.
    assert {_key(ts) for ts in delta_summary.results} == delta_standing
    assert {_key(ts) for ts in replay_summary.results} == replay_standing
    assert delta_summary.retractions() > 0

    # Every member of the final full disjunction is standing, and every
    # standing result is a valid JCC set of live tuples.
    final = {
        _key(ts)
        for ts in full_disjunction_sets(delta_workload.database, use_index=True)
    }
    assert final <= delta_standing
    live = {
        (t.relation_name, t.label, t.values)
        for t in delta_workload.database.tuples()
    }
    for ts in delta_summary.results:
        assert _key(ts) <= live
        assert ts.is_jcc

    # Delta maintenance does strictly less work than re-running the engine.
    assert delta_summary.delta_work() < (
        replay_summary.statistics.candidates_generated
    )


@pytest.mark.parametrize("seed", [0, 3, 8])
def test_deletion_only_stream_equals_full_recompute_exactly(seed):
    """With no arrivals in the mix, the net set IS the recompute, per batch."""
    rng = random.Random(seed)
    database = random_database(
        relations=3,
        attributes=5,
        arity=3,
        tuples_per_relation=4,
        domain_size=2,
        null_rate=0.2,
        seed=seed,
    )
    maintainer = StreamingFullDisjunction(database, use_index=True)
    maintainer.prime()
    targets = [(r.name, t.label) for r in database.relations for t in r if len(r) > 1]
    rng.shuffle(targets)
    for relation_name, label in targets[:4]:
        if len(database.relation(relation_name)) <= 1:
            continue
        maintainer.remove([Removal(relation_name, label)])
        net = {_key(ts) for ts in maintainer.results}
        fresh = {
            _key(ts) for ts in full_disjunction_sets(database, use_index=True)
        }
        assert net == fresh, f"divergence after deleting {label}"


@pytest.mark.parametrize("batch_size", [1, 2])
@pytest.mark.parametrize(
    "name,factory",
    [pair for pair in FACTORIES if pair[0] in ("chain", "star", "tourist")],
    ids=[name for name, _ in FACTORIES if name in ("chain", "star", "tourist")],
)
def test_ranked_mutated_stream_parity(name, factory, batch_size):
    """Ranked streams: same events, same scores, canonical emit order."""

    def _ranking():
        return MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 5))

    replay_workload, delta_workload = factory(), factory()
    ops = inject_mutations(replay_workload, mutations=3, seed=11)
    delta_ops = inject_mutations(delta_workload, mutations=3, seed=11)
    replay_events = list(
        replay_stream(
            replay_workload.database,
            ops,
            batch_size=batch_size,
            use_index=True,
            ranking=_ranking(),
        )
    )
    delta_events = list(
        incremental_replay_stream(
            delta_workload.database,
            delta_ops,
            batch_size=batch_size,
            use_index=True,
            ranking=_ranking(),
        )
    )

    def ranked_emits(events):
        return [
            (e.after_arrivals, _key(e.tuple_set), e.score)
            for e in events
            if isinstance(e, ResultEvent) and e.kind == "emit"
        ]

    def ranked_retracts(events):
        grouped = {}
        for e in events:
            if isinstance(e, ResultEvent) and e.kind == "retract":
                grouped.setdefault(e.after_arrivals, set()).add(
                    (_key(e.tuple_set), e.score)
                )
        return grouped

    if batch_size == 1:
        # Emission parity is *ordered* (canonical rank order within each
        # batch); retraction parity is per-batch set equality (scores
        # included).
        assert ranked_emits(delta_events) == ranked_emits(replay_events)
        assert ranked_retracts(delta_events) == ranked_retracts(replay_events)
    else:
        # Multi-op batches may pass through intermediate states (see the
        # unranked test); the net standing (result, score) sets still agree.
        def standing(events):
            live = {}
            for e in events:
                if not isinstance(e, ResultEvent):
                    continue
                key = _key(e.tuple_set)
                if e.kind == "retract":
                    live.pop(key, None)
                else:
                    live[key] = e.score
            return set(live.items())

        assert standing(delta_events) == standing(replay_events)


class TestMaintainerMutationApi:
    def _maintainer(self):
        workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=4, seed=2
        )
        maintainer = StreamingFullDisjunction(workload.database, use_index=True)
        maintainer.prime()
        return workload, maintainer

    def test_open_cursors_observe_retractions_in_stream_order(self):
        workload, maintainer = self._maintainer()
        cursor = maintainer.session(name="watcher")
        base = cursor.drain()
        victim = next(iter(workload.database.relations[1]))
        record = maintainer.remove([Removal(victim.relation_name, victim.label)])
        events = cursor.drain()
        retractions = [e for e in events if isinstance(e, Retraction)]
        assert len(retractions) == record["results_retracted"] > 0
        assert all(victim in r.tuple_set for r in retractions)
        # Retractions precede the re-derived results in the stream.
        first_emit = next(
            (i for i, e in enumerate(events) if not isinstance(e, Retraction)),
            len(events),
        )
        assert all(
            isinstance(e, Retraction) for e in events[:first_emit]
        )
        assert len(base) > len(maintainer.results) - record["results_emitted"]

    def test_duplicate_removal_in_one_batch_raises_before_mutating(self):
        workload, maintainer = self._maintainer()
        victim = next(iter(workload.database.relations[0]))
        removal = Removal(victim.relation_name, victim.label)
        with pytest.raises(ValueError, match="duplicate removal"):
            maintainer.remove([removal, removal])
        assert workload.database.epoch == 0

    def test_unknown_removal_target_is_atomic(self):
        workload, maintainer = self._maintainer()
        victim = next(iter(workload.database.relations[0]))
        from repro.relational.errors import RelationError

        with pytest.raises(RelationError):
            maintainer.remove(
                [Removal(victim.relation_name, victim.label),
                 Removal(victim.relation_name, "nope")]
            )
        assert workload.database.epoch == 0
        assert victim in workload.database.relation(victim.relation_name).tuples

    def test_noop_updates_emit_nothing(self):
        workload, maintainer = self._maintainer()
        t = next(iter(workload.database.relations[0]))
        record = maintainer.update([Update(t.relation_name, t.label, t.values)])
        assert record["results_emitted"] == 0
        assert record["results_retracted"] == 0
        assert workload.database.epoch == 0

    def test_apply_dispatches_mixed_batches_in_order(self):
        workload, maintainer = self._maintainer()
        arrival = workload.arrivals[0]
        t = next(iter(workload.database.relations[2]))
        record = maintainer.apply(
            [
                Arrival(*arrival),
                Removal(t.relation_name, t.label),
            ]
        )
        assert record["arrivals"] == 1 and record["removals"] == 1
        net = {_key(ts) for ts in maintainer.results}
        fresh = {
            _key(ts)
            for ts in full_disjunction_sets(workload.database, use_index=True)
        }
        assert fresh <= net
