"""The sharded server: routing, parity, broadcast mutations, backpressure.

Most suites here talk to the *router* in-process (``handle_request``) with
stub shards, so routing, admission control, and session rewriting are tested
without process spawns; two end-to-end suites start real shard processes and
assert client parity with the serial engine plus mutation broadcast.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.full_disjunction import full_disjunction_sets
from repro.service.server import QueryServer, fetch_first_k
from repro.service.sharding import (
    ConsistentHashRing,
    ShardedQueryServer,
    ShardHandle,
    open_routing_key,
    run_sharded_smoke,
    start_sharded_server,
)
from repro.workloads.generators import star_database
from repro.workloads.tourist import tourist_database


def _run(coroutine):
    return asyncio.run(coroutine)


def _serial_labels(database, use_index=True):
    return [
        sorted(t.label for t in tuple_set)
        for tuple_set in full_disjunction_sets(database, use_index=use_index)
    ]


class _LocalShard(ShardHandle):
    """A shard handle answering through an in-process ``QueryServer``.

    Keeps the router suites free of process spawns: ``call`` dispatches to
    the real single-process request handler, so the router is exercised
    against the real protocol semantics.
    """

    def __init__(self, index, database, use_index=True):
        super().__init__(index, process=None, host="", port=0)
        self.state = QueryServer(database, use_index=use_index)

    async def call(self, request):
        self.requests += 1
        return await self.state.handle_request(request)


def _local_router(database, shards=2, **limits):
    handles = [_LocalShard(index, database) for index in range(shards)]
    return ShardedQueryServer(handles, **limits), handles


class TestRouting:
    def test_ring_is_deterministic_and_covers_all_shards(self):
        ring = ConsistentHashRing(4)
        again = ConsistentHashRing(4)
        keys = [f"query-{index}" for index in range(200)]
        placements = [ring.shard_for(key) for key in keys]
        assert placements == [again.shard_for(key) for key in keys]
        assert set(placements) == {0, 1, 2, 3}

    def test_identical_opens_share_a_routing_key(self):
        first = {"op": "open", "engine": "fd", "use_index": True}
        second = {"use_index": True, "engine": "fd", "op": "open"}
        assert open_routing_key(first) == open_routing_key(second)

    def test_different_queries_produce_different_keys(self):
        base = {"op": "open", "engine": "fd"}
        ranked = {"op": "open", "engine": "ranked", "importance": {"c1": 1.0}}
        assert open_routing_key(base) != open_routing_key(ranked)

    def test_identical_queries_land_on_one_shard_and_share_the_cache(self):
        database = tourist_database()
        router, handles = _local_router(database, shards=2)

        async def scenario():
            responses = [
                await router.handle_request({"op": "open", "engine": "fd"})
                for _ in range(4)
            ]
            return responses

        responses = _run(scenario())
        assert all(response["ok"] for response in responses)
        shards_used = {response["shard"] for response in responses}
        assert len(shards_used) == 1
        # All four sessions share the target shard's single cached prefix.
        target = handles[next(iter(shards_used))]
        assert target.state.cache.stats()["hits"] == 3
        # Session names are router-global, never shard-local.
        assert all(response["session"].startswith("g") for response in responses)

    def test_session_ops_route_back_to_the_owning_shard(self):
        database = tourist_database()
        router, handles = _local_router(database, shards=3)
        serial = _serial_labels(database)

        async def scenario():
            opened = await router.handle_request({"op": "open", "engine": "fd"})
            name = opened["session"]
            results = []
            while True:
                reply = await router.handle_request(
                    {"op": "next", "session": name, "k": 3}
                )
                assert reply["ok"]
                results.extend(reply["results"])
                if reply["exhausted"]:
                    break
            closed = await router.handle_request(
                {"op": "close", "session": name}
            )
            assert closed["ok"]
            return results

        assert _run(scenario()) == serial

    def test_unknown_session_and_op_are_refused(self):
        router, _ = _local_router(tourist_database())

        async def scenario():
            missing = await router.handle_request(
                {"op": "next", "session": "g99", "k": 1}
            )
            unknown = await router.handle_request({"op": "warp"})
            return missing, unknown

        missing, unknown = _run(scenario())
        assert not missing["ok"] and "no session" in missing["error"]
        assert not unknown["ok"] and "unknown op" in unknown["error"]


class TestBroadcastMutations:
    def test_ingest_reaches_every_shard(self):
        database = tourist_database()
        router, handles = _local_router(database, shards=2)

        async def scenario():
            return await router.handle_request(
                {"op": "ingest", "tuples": [["Climates", ["finland", "cold"]]]}
            )

        response = _run(scenario())
        assert response["ok"]
        assert response["shards_applied"] == 2
        assert all(
            handle.state.maintainer.arrivals_applied == 1 for handle in handles
        )

    def test_bad_retract_touches_no_shard(self):
        database = tourist_database()
        router, handles = _local_router(database, shards=2)

        async def scenario():
            return await router.handle_request(
                {"op": "retract", "tuples": [["Prices", "no_such_label"]]}
            )

        response = _run(scenario())
        assert not response["ok"]
        assert all(
            handle.state.maintainer.mutations_applied == 0 for handle in handles
        )


class TestAdmissionControl:
    def test_session_capacity_returns_busy(self):
        database = tourist_database()
        router, _ = _local_router(database, shards=1, max_sessions_per_shard=2)

        async def scenario():
            opens = [
                await router.handle_request({"op": "open", "engine": "fd"})
                for _ in range(3)
            ]
            return opens

        opens = _run(scenario())
        assert opens[0]["ok"] and opens[1]["ok"]
        refused = opens[2]
        assert not refused["ok"]
        assert refused["busy"] is True
        assert refused["retry_after_ms"] > 0

    def test_closing_a_session_frees_capacity(self):
        database = tourist_database()
        router, _ = _local_router(database, shards=1, max_sessions_per_shard=1)

        async def scenario():
            first = await router.handle_request({"op": "open", "engine": "fd"})
            refused = await router.handle_request({"op": "open", "engine": "fd"})
            await router.handle_request(
                {"op": "close", "session": first["session"]}
            )
            reopened = await router.handle_request({"op": "open", "engine": "fd"})
            return refused, reopened

        refused, reopened = _run(scenario())
        assert refused.get("busy") is True
        assert reopened["ok"]

    def test_queue_capacity_returns_busy(self):
        database = tourist_database()
        router, handles = _local_router(
            database, shards=1, max_queue_per_shard=1
        )
        handles[0].pending = 1  # a request is already in flight

        async def scenario():
            return await router.handle_request({"op": "open", "engine": "fd"})

        refused = _run(scenario())
        assert refused.get("busy") is True
        assert "capacity" in refused["error"]

    def test_stats_exposes_gauges_and_limits(self):
        database = tourist_database()
        router, _ = _local_router(
            database, shards=2, max_sessions_per_shard=5, max_queue_per_shard=7
        )

        async def scenario():
            await router.handle_request({"op": "open", "engine": "fd"})
            return await router.handle_request({"op": "stats"})

        stats = _run(scenario())
        assert stats["ok"]
        assert stats["shards"] == 2
        assert stats["sessions"] == 1
        assert stats["limits"] == {
            "max_sessions_per_shard": 5,
            "max_queue_per_shard": 7,
        }
        assert len(stats["per_shard"]) == 2
        for entry in stats["per_shard"]:
            assert {"shard", "sessions", "queue_depth", "requests", "cache"} <= set(
                entry
            )
        assert sum(entry["sessions"] for entry in stats["per_shard"]) == 1

    def test_busy_rejections_are_counted(self):
        database = tourist_database()
        router, _ = _local_router(database, shards=1, max_sessions_per_shard=1)

        async def scenario():
            await router.handle_request({"op": "open", "engine": "fd"})
            await router.handle_request({"op": "open", "engine": "fd"})
            return await router.handle_request({"op": "stats"})

        stats = _run(scenario())
        assert stats["busy_rejections"] == 1


class TestEndToEnd:
    """Real shard processes — kept small, two suites only."""

    def test_sharded_smoke_parity(self):
        database = star_database(
            spokes=3, tuples_per_relation=4, hub_domain=2, seed=1
        )
        outcome = run_sharded_smoke(database, clients=4, shards=2)
        assert outcome["clients"] == 4
        assert outcome["shards"] == 2
        assert outcome["results_per_client"] > 0

    def test_mutations_and_busy_over_the_wire(self):
        database = tourist_database()

        async def scenario():
            server, router, port = await start_sharded_server(
                database, shards=2, max_sessions_per_shard=1
            )
            try:
                # Two distinct queries may land anywhere; the same query
                # twice lands on one shard and the second open must be
                # refused busy at capacity 1.
                from repro.service.server import client_call

                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    first = await client_call(
                        reader, writer, {"op": "open", "engine": "fd"}
                    )
                    assert first["ok"]
                    refused = await client_call(
                        reader, writer, {"op": "open", "engine": "fd"}
                    )
                    assert refused.get("busy") is True
                    # Broadcast ingest reaches both shards and the session's
                    # shard still answers afterwards (stream-free session
                    # fails fast only on deep pulls; a stats round trip
                    # suffices here).
                    ingested = await client_call(
                        reader, writer,
                        {"op": "ingest", "tuples": [["Climates", ["norway", "cold"]]]},
                    )
                    assert ingested["ok"]
                    assert ingested["shards_applied"] == 2
                    stats = await client_call(reader, writer, {"op": "stats"})
                    assert stats["ok"] and stats["shards"] == 2
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                await router.shutdown()

        _run(scenario())


class TestRouterValidation:
    def test_rejects_non_positive_limits(self):
        handles = [_LocalShard(0, tourist_database())]
        with pytest.raises(ValueError):
            ShardedQueryServer(handles, max_sessions_per_shard=0)
        with pytest.raises(ValueError):
            ShardedQueryServer(handles, max_queue_per_shard=0)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(0)

        async def scenario():
            await start_sharded_server(tourist_database(), shards=0)

        with pytest.raises(ValueError):
            _run(scenario())

    def test_fetch_first_k_works_through_the_router(self):
        """The stock client helper needs no changes to speak to the router."""
        database = tourist_database()
        serial = _serial_labels(database)

        async def scenario():
            server, router, port = await start_sharded_server(database, shards=2)
            try:
                return await fetch_first_k("127.0.0.1", port, None, chunk=3)
            finally:
                server.close()
                await server.wait_closed()
                await router.shutdown()

        assert _run(scenario()) == serial
