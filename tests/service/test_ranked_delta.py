"""Ranked delta maintenance vs full ranked recompute: the tentpole equivalence.

:func:`~repro.service.delta.incremental_replay_stream` with a ``ranking``
must emit, after any number of ingested arrivals, *exactly* the ranked event
stream :func:`~repro.workloads.streaming.replay_stream` emits by re-running
the whole ranked engine and deduplicating — same result sets, same scores,
same order (both canonicalise rank ties by sort key) — while generating
strictly fewer candidates.  The importance functions are label-derived with
small moduli, so score ties are everywhere: the canonical tie order is part
of what is being tested.
"""

from __future__ import annotations

import pytest

from repro.core.priority import PriorityState, top_k
from repro.core.ranking import MaxRanking
from repro.service.delta import (
    DeltaSummary,
    StreamingFullDisjunction,
    incremental_replay_stream,
)
from repro.service.session import StaleResultLog
from repro.workloads.generators import random_database
from repro.workloads.streaming import (
    Arrival,
    ResultEvent,
    StreamSummary,
    hold_back_arrivals,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)
from repro.workloads.tourist import tourist_database


def _keys(tuple_set):
    return frozenset((t.relation_name, t.label) for t in tuple_set)


def _ranking(modulus: int = 5):
    """Label-derived importance with deliberate score ties."""
    return MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % modulus))


def _workload_factories():
    yield "chain", lambda: streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=6, seed=3
    )
    yield "star", lambda: streaming_star_workload(
        spokes=3, base_tuples=3, arrivals=6, seed=1
    )
    yield "tourist", lambda: hold_back_arrivals(tourist_database(), fraction=0.5)
    for seed in (0, 5, 9):
        yield f"random-{seed}", lambda seed=seed: hold_back_arrivals(
            random_database(
                relations=3,
                attributes=5,
                arity=3,
                tuples_per_relation=4,
                domain_size=2,
                null_rate=0.25,
                seed=seed,
            ),
            fraction=0.4,
        )


FACTORIES = list(_workload_factories())
FACTORY_IDS = [name for name, _ in FACTORIES]


def _ranked_events(events):
    """The ranked event stream as comparable (after, keys, score) triples."""
    return [
        (event.after_arrivals, _keys(event.tuple_set), event.score)
        for event in events
        if isinstance(event, ResultEvent)
    ]


@pytest.mark.parametrize("batch_size", [1, 2])
@pytest.mark.parametrize("name,factory", FACTORIES, ids=FACTORY_IDS)
def test_ranked_delta_stream_equals_ranked_recompute(name, factory, batch_size):
    """The acceptance bar: identical ranked event streams, fewer candidates."""
    replay_workload, delta_workload = factory(), factory()
    replay_summary, delta_summary = StreamSummary(), DeltaSummary()
    replay_events = list(
        replay_stream(
            replay_workload.database,
            replay_workload.arrivals,
            batch_size=batch_size,
            use_index=True,
            summary=replay_summary,
            ranking=_ranking(),
        )
    )
    delta_events = list(
        incremental_replay_stream(
            delta_workload.database,
            delta_workload.arrivals,
            batch_size=batch_size,
            use_index=True,
            summary=delta_summary,
            ranking=_ranking(),
        )
    )

    # Score-and-set *sequence* parity: not merely the same sets, the same
    # events in the same order — ties included.
    assert _ranked_events(delta_events) == _ranked_events(replay_events)
    # Every reported score is the ranking's actual score.
    ranking = _ranking()
    for event in delta_events:
        if isinstance(event, ResultEvent):
            assert event.score == ranking(event.tuple_set)
    # Never a duplicate emission.
    emitted = [
        _keys(e.tuple_set) for e in delta_events if isinstance(e, ResultEvent)
    ]
    assert len(emitted) == len(set(emitted))


@pytest.mark.parametrize("name,factory", FACTORIES, ids=FACTORY_IDS)
def test_ranked_per_arrival_work_shrinks_versus_recompute(name, factory):
    replay_workload, delta_workload = factory(), factory()
    replay_summary, delta_summary = StreamSummary(), DeltaSummary()
    list(
        replay_stream(
            replay_workload.database, replay_workload.arrivals,
            use_index=True, summary=replay_summary, ranking=_ranking(),
        )
    )
    list(
        incremental_replay_stream(
            delta_workload.database, delta_workload.arrivals,
            use_index=True, summary=delta_summary, ranking=_ranking(),
        )
    )
    replay_work = replay_summary.statistics.candidates_generated
    delta_work = delta_summary.statistics.candidates_generated
    assert delta_work < replay_work, (
        f"{name}: ranked delta generated {delta_work} candidates, "
        f"recompute {replay_work}"
    )
    assert len(delta_summary.per_batch) == len(delta_workload.arrivals)


@pytest.mark.parametrize("c", [1, 2])
def test_ranked_delta_with_higher_determination_bounds(c):
    """The seeded-subset argument holds beyond f_max: a 2-determined ranking."""
    from repro.core.ranking import CDeterminedRanking, importance_function

    def make_ranking():
        imp = importance_function(lambda t: float(sum(ord(ch) for ch in t.label) % 5))
        if c == 1:
            return MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 5))
        return CDeterminedRanking(c, lambda subset: sum(imp(t) for t in subset))

    def factory():
        return streaming_chain_workload(relations=3, base_tuples=4, arrivals=4, seed=7)

    replay_workload, delta_workload = factory(), factory()
    replay_events = list(
        replay_stream(
            replay_workload.database, replay_workload.arrivals,
            use_index=True, ranking=make_ranking(),
        )
    )
    delta_events = list(
        incremental_replay_stream(
            delta_workload.database, delta_workload.arrivals,
            use_index=True, ranking=make_ranking(),
        )
    )
    assert _ranked_events(delta_events) == _ranked_events(replay_events)


def test_first_k_cutoff_matches_top_k_then_resumes_into_arrivals():
    """A ranked session pulls first-k lazily, then observes the ingest."""
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=3, seed=3)
    reference = streaming_chain_workload(relations=3, base_tuples=4, arrivals=3, seed=3)
    maintainer = StreamingFullDisjunction(
        workload.database, use_index=True, ranking=_ranking()
    )
    session = maintainer.session(name="client")
    prefix = session.next(3)
    expected = top_k(reference.database, _ranking(), 3, use_index=True)
    # Scores agree position by position; the sets agree up to score ties
    # (the maintainer canonicalises tie order, the engine uses queue order).
    assert [score for _, score in prefix] == [score for _, score in expected]
    assert {(_keys(ts), s) for ts, s in prefix} | {
        (_keys(ts), s) for ts, s in expected
    } <= {
        (_keys(ts), ranking_score)
        for ts, ranking_score in top_k(
            reference.database, _ranking(), 10_000, use_index=True
        )
    }

    record = maintainer.ingest(workload.arrivals)
    fresh = session.drain()
    new_items = [item for item in fresh if _keys(item[0]) not in
                 {_keys(ts) for ts, _ in prefix}]
    assert len(fresh) >= record["results_emitted"]
    # New results (beyond the base tail) are rank-ordered within the batch.
    batch_scores = [score for _, score in fresh[-record["results_emitted"]:]]
    assert batch_scores == sorted(batch_scores, reverse=True)
    assert len(new_items) == len(fresh)  # no duplicates ever re-emitted
    maintainer.close()
    assert session.exhausted


def test_ranked_maintainer_results_match_fresh_top_k_on_ingested_database():
    workload = streaming_star_workload(spokes=3, base_tuples=3, arrivals=5, seed=2)
    maintainer = StreamingFullDisjunction(
        workload.database, use_index=True, ranking=_ranking()
    )
    maintainer.prime()
    maintainer.ingest(workload.arrivals)
    emitted = {(_keys(ts), score) for ts, score in maintainer.results}
    final = {
        (_keys(ts), score)
        for ts, score in top_k(workload.database, _ranking(), 10_000, use_index=True)
    }
    # Monotone emission: the ranked FD of the fully ingested database is
    # contained in what was emitted (old results are never retracted).
    assert final <= emitted


def test_ranked_ingest_before_prime_primes_first():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    maintainer = StreamingFullDisjunction(
        workload.database, use_index=True, ranking=_ranking()
    )
    maintainer.ingest(workload.arrivals[:1])
    expected = {
        _keys(ts)
        for ts, _ in top_k(workload.database, _ranking(), 10_000, use_index=True)
    }
    assert expected <= {_keys(ts) for ts, _ in maintainer.results}


def test_priority_state_seeds_only_subsets_containing_the_arrival():
    """The delta work bound: seeded queue members all contain the arrival."""
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    state = PriorityState(workload.database, _ranking(), use_index=True)
    list(state.results())  # drain the base run; queues are now empty
    assert all(len(pool) == 0 for pool in state.pools)

    arrival = workload.arrivals[0]
    t = workload.database.add_tuple(
        arrival.relation_name, arrival.values, importance=arrival.importance
    )
    seeded = state.ingest([t])
    assert seeded >= 1
    for pool in state.pools:
        for member in pool:
            assert t in member


def test_stale_ranked_cached_prefix_fails_fast_after_ingest():
    """The satellite: StaleResultLog semantics extend to ranked cursors."""
    from repro.service.cache import PrefixCache

    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    database = workload.database
    cache = PrefixCache()
    session = cache.open(database, "priority", ranking=_ranking(), use_index=True)
    prefix = session.next(2)
    assert len(prefix) == 2

    arrival = workload.arrivals[0]
    database.add_tuple(
        arrival.relation_name, arrival.values, importance=arrival.importance
    )
    invalidated = cache.invalidate(database)
    assert invalidated == 1
    # The materialized prefix stays readable; pulls beyond it fail fast.
    assert session.emitted == prefix
    with pytest.raises(StaleResultLog, match="generation"):
        session.next(10_000)
    # A reopened ranked query serves the post-ingest stream cleanly.
    fresh = cache.open(database, "priority", ranking=_ranking(), use_index=True)
    scores = [score for _, score in fresh.drain()]
    assert scores == sorted(scores, reverse=True)


def test_equal_ranking_specs_share_one_cached_ranked_log():
    """(generation, ranking, c) keying: fresh-but-equal MaxRankings share."""
    from repro.service.cache import PrefixCache

    database = tourist_database()
    importance = {t.label: float(ord(t.label[0])) for t in database.tuples()}
    cache = PrefixCache()
    first = cache.open(database, "priority", ranking=MaxRanking(importance))
    second = cache.open(database, "priority", ranking=MaxRanking(dict(importance)))
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == 1
    assert first.log is second.log


def test_ranked_and_unranked_delta_agree_on_the_result_sets():
    """The ranked maintainer finds exactly the unranked maintainer's sets."""
    ranked_workload = streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=5, seed=11
    )
    plain_workload = streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=5, seed=11
    )
    ranked_events = list(
        incremental_replay_stream(
            ranked_workload.database, ranked_workload.arrivals,
            use_index=True, ranking=_ranking(),
        )
    )
    plain_events = list(
        incremental_replay_stream(
            plain_workload.database, plain_workload.arrivals, use_index=True
        )
    )
    ranked_sets = {
        _keys(e.tuple_set) for e in ranked_events if isinstance(e, ResultEvent)
    }
    plain_sets = {
        _keys(e.tuple_set) for e in plain_events if isinstance(e, ResultEvent)
    }
    assert ranked_sets == plain_sets


def test_ranked_delta_stream_records_store_counters():
    """The summary's extras carry the store work even without a close()."""
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=3, seed=3)
    summary = DeltaSummary()
    list(
        incremental_replay_stream(
            workload.database, workload.arrivals,
            use_index=True, summary=summary, ranking=_ranking(),
        )
    )
    extras = summary.statistics.extras
    assert extras.get("complete_sets_scanned", 0) > 0
    assert extras.get("incomplete_additions", 0) > 0


def test_ranked_ingest_is_atomic_on_a_bad_arrival():
    from repro.relational.errors import DatabaseError

    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    maintainer = StreamingFullDisjunction(
        workload.database, use_index=True, ranking=_ranking()
    )
    maintainer.prime()
    tuples_before = workload.database.tuple_count()
    good = workload.arrivals[0]
    with pytest.raises(DatabaseError):
        maintainer.ingest([good, Arrival("NoSuchRelation", ("x",))])
    assert workload.database.tuple_count() == tuples_before
    assert maintainer.arrivals_applied == 0
    record = maintainer.ingest([good])
    assert record["arrivals"] == 1
