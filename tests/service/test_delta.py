"""Streaming delta maintenance vs full recompute: the satellite equivalence.

:func:`~repro.service.delta.incremental_replay_stream` must emit, after any
number of ingested arrivals, exactly the result sets
:func:`~repro.workloads.streaming.replay_stream` emits by re-running the
whole engine and deduplicating — while the statistics counters show the
per-arrival work shrinking from "proportional to the full result" to
"proportional to the delta".  The fixtures are the streaming workload
generators the replay tests already use.
"""

from __future__ import annotations

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.service.delta import (
    DeltaSummary,
    StreamingFullDisjunction,
    incremental_replay_stream,
)
from repro.workloads.generators import random_database
from repro.workloads.streaming import (
    IngestEvent,
    ResultEvent,
    StreamSummary,
    hold_back_arrivals,
    replay_stream,
    streaming_chain_workload,
    streaming_star_workload,
)
from repro.workloads.tourist import tourist_database


def _keys(tuple_set):
    return frozenset((t.relation_name, t.label) for t in tuple_set)


def _workload_factories():
    yield "chain", lambda: streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=6, seed=3
    )
    yield "star", lambda: streaming_star_workload(
        spokes=3, base_tuples=3, arrivals=6, seed=1
    )
    yield "tourist", lambda: hold_back_arrivals(tourist_database(), fraction=0.5)
    for seed in (0, 5, 9):
        yield f"random-{seed}", lambda seed=seed: hold_back_arrivals(
            random_database(
                relations=3,
                attributes=5,
                arity=3,
                tuples_per_relation=4,
                domain_size=2,
                null_rate=0.25,
                seed=seed,
            ),
            fraction=0.4,
        )


FACTORIES = list(_workload_factories())
FACTORY_IDS = [name for name, _ in FACTORIES]


def _cumulative_per_arrival(events):
    """Map each after-arrivals point to the cumulative emitted result set."""
    checkpoints = {}
    accumulated = set()
    for event in events:
        if isinstance(event, ResultEvent):
            accumulated.add(_keys(event.tuple_set))
            checkpoints[event.after_arrivals] = set(accumulated)
    return accumulated, checkpoints


@pytest.mark.parametrize("batch_size", [1, 2])
@pytest.mark.parametrize("name,factory", FACTORIES, ids=FACTORY_IDS)
def test_delta_stream_equals_full_recompute_arrival_by_arrival(
    name, factory, batch_size
):
    replay_workload, delta_workload = factory(), factory()
    replay_summary, delta_summary = StreamSummary(), DeltaSummary()
    replay_events = list(
        replay_stream(
            replay_workload.database,
            replay_workload.arrivals,
            batch_size=batch_size,
            use_index=True,
            summary=replay_summary,
        )
    )
    delta_events = list(
        incremental_replay_stream(
            delta_workload.database,
            delta_workload.arrivals,
            batch_size=batch_size,
            use_index=True,
            summary=delta_summary,
        )
    )

    replay_final, replay_checkpoints = _cumulative_per_arrival(replay_events)
    delta_final, delta_checkpoints = _cumulative_per_arrival(delta_events)
    assert delta_final == replay_final
    # At every arrival point where both emitted something, the cumulative
    # emitted sets agree (a point missing on one side emitted nothing new).
    for point in set(replay_checkpoints) & set(delta_checkpoints):
        assert delta_checkpoints[point] == replay_checkpoints[point], (
            f"divergence after {point} arrivals"
        )
    # Never a duplicate emission.
    emitted = [
        _keys(e.tuple_set) for e in delta_events if isinstance(e, ResultEvent)
    ]
    assert len(emitted) == len(set(emitted))
    assert {_keys(ts) for ts in delta_summary.results} == delta_final


@pytest.mark.parametrize("name,factory", FACTORIES, ids=FACTORY_IDS)
def test_per_arrival_work_shrinks_versus_recompute(name, factory):
    """The satellite criterion, via the machine-independent work counters."""
    replay_workload, delta_workload = factory(), factory()
    replay_summary, delta_summary = StreamSummary(), DeltaSummary()
    list(
        replay_stream(
            replay_workload.database, replay_workload.arrivals,
            use_index=True, summary=replay_summary,
        )
    )
    list(
        incremental_replay_stream(
            delta_workload.database, delta_workload.arrivals,
            use_index=True, summary=delta_summary,
        )
    )
    replay_work = replay_summary.statistics.candidates_generated
    delta_work = delta_summary.statistics.candidates_generated
    assert delta_work < replay_work, (
        f"{name}: delta generated {delta_work} candidates, "
        f"recompute {replay_work}"
    )
    assert delta_summary.delta_work() <= delta_work
    assert len(delta_summary.per_batch) == len(delta_workload.arrivals)


def test_final_state_matches_a_fresh_run_on_the_ingested_database():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=6, seed=3)
    events = list(
        incremental_replay_stream(workload.database, workload.arrivals, use_index=True)
    )
    emitted = {_keys(e.tuple_set) for e in events if isinstance(e, ResultEvent)}
    final = {_keys(ts) for ts in full_disjunction(workload.database, use_index=True)}
    # Monotone emission: the final FD is contained in what was emitted (old
    # results may have become non-maximal but are never retracted).
    assert final <= emitted


def test_exactly_one_catalog_build():
    workload = streaming_star_workload(spokes=3, base_tuples=3, arrivals=6, seed=1)
    summary = DeltaSummary()
    list(
        incremental_replay_stream(
            workload.database, workload.arrivals, batch_size=2, summary=summary
        )
    )
    assert summary.catalog_rebuilds == 1
    assert workload.database.catalog_rebuilds == 1
    assert summary.arrivals_applied == len(workload.arrivals)


def test_open_sessions_observe_arrivals_without_restarting():
    """The tentpole behaviour: a paused session resumes into the new results."""
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=4, seed=3)
    maintainer = StreamingFullDisjunction(workload.database, use_index=True)
    session = maintainer.session(name="client")
    prefix = session.next(3)
    assert len(prefix) == 3

    maintainer.prime()
    base_total = len(maintainer.results)
    rest = session.drain()
    assert len(prefix) + len(rest) == base_total
    assert not session.exhausted  # the log is live: more may arrive

    record = maintainer.ingest(workload.arrivals[:2])
    fresh = session.drain()
    assert len(fresh) == record["results_emitted"]
    seen = {_keys(ts) for ts in prefix + rest}
    assert all(_keys(ts) not in seen for ts in fresh)
    maintainer.close()
    assert session.exhausted


def test_ingest_before_prime_primes_first():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    maintainer = StreamingFullDisjunction(workload.database, use_index=True)
    maintainer.ingest(workload.arrivals[:1])  # must not mis-classify base results
    expected = {_keys(ts) for ts in full_disjunction(workload.database, use_index=True)}
    assert expected <= {_keys(ts) for ts in maintainer.results}


def test_delta_works_without_the_section7_index():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=4, seed=3)
    reference_workload = streaming_chain_workload(
        relations=3, base_tuples=4, arrivals=4, seed=3
    )
    plain = list(
        incremental_replay_stream(
            workload.database, workload.arrivals, use_index=False
        )
    )
    indexed = list(
        incremental_replay_stream(
            reference_workload.database, reference_workload.arrivals, use_index=True
        )
    )
    plain_set = {_keys(e.tuple_set) for e in plain if isinstance(e, ResultEvent)}
    indexed_set = {_keys(e.tuple_set) for e in indexed if isinstance(e, ResultEvent)}
    assert plain_set == indexed_set


def test_ingest_is_atomic_on_a_bad_arrival():
    """A bad arrival must not leave earlier ones applied without delta passes."""
    from repro.relational.errors import DatabaseError
    from repro.workloads.streaming import Arrival

    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    maintainer = StreamingFullDisjunction(workload.database, use_index=True)
    maintainer.prime()
    tuples_before = workload.database.tuple_count()
    good = workload.arrivals[0]
    with pytest.raises(DatabaseError):
        maintainer.ingest([good, Arrival("NoSuchRelation", ("x",))])
    # A wrong-arity arrival is caught up front too, not mid-mutation.
    from repro.relational.errors import SchemaError

    with pytest.raises(SchemaError, match="values"):
        maintainer.ingest([good, Arrival(good.relation_name, ("just-one-value",))])
    # Nothing was applied: the good arrival can still be ingested cleanly.
    assert workload.database.tuple_count() == tuples_before
    assert maintainer.arrivals_applied == 0
    record = maintainer.ingest([good])
    assert record["arrivals"] == 1


def test_maintainer_honours_the_backend_for_the_base_run():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    reference = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=3)
    batched = StreamingFullDisjunction(
        workload.database, use_index=True, backend="batched"
    )
    batched.prime()
    serial = StreamingFullDisjunction(reference.database, use_index=True)
    serial.prime()
    assert [_keys(ts) for ts in batched.results] == [_keys(ts) for ts in serial.results]
    # The batched base run really went through the batched step: the probe
    # amortization leaves its signature in the store counters.
    assert batched.statistics.extras["complete_bucket_probes"] < (
        serial.statistics.extras["complete_bucket_probes"]
    )


def test_bad_batch_size_is_rejected():
    workload = streaming_chain_workload(relations=3, base_tuples=4, arrivals=2, seed=1)
    with pytest.raises(ValueError, match="batch_size"):
        list(
            incremental_replay_stream(
                workload.database, workload.arrivals, batch_size=0
            )
        )
