"""Property-based tests for ranked retrieval (Section 5)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.full_disjunction import full_disjunction
from repro.core.priority import priority_incremental_fd, top_k
from repro.core.ranking import CDeterminedRanking, MaxRanking, importance_function

from tests.conftest import labels_of, small_databases

RELAXED = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def label_hash_importance(t):
    """A deterministic pseudo-random importance derived from the tuple label."""
    return float(sum(ord(ch) for ch in t.label) % 17)


@RELAXED
@given(database=small_databases())
def test_priority_fd_produces_the_whole_fd_in_ranking_order(database):
    ranking = MaxRanking(label_hash_importance)
    ranked = list(priority_incremental_fd(database, ranking))
    assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(database))
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)


@RELAXED
@given(database=small_databases(), k=st.integers(min_value=1, max_value=6))
def test_top_k_scores_match_exhaustive_ranking(database, k):
    ranking = MaxRanking(label_hash_importance)
    everything = sorted(
        (ranking(ts) for ts in full_disjunction(database)), reverse=True
    )
    got = [score for _, score in top_k(database, ranking, k)]
    assert got == everything[: len(got)]
    assert len(got) == min(k, len(everything))


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_2_determined_ranking_is_also_served_in_order(database):
    imp = importance_function(label_hash_importance)
    ranking = CDeterminedRanking(
        2, lambda subset: sum(imp(t) for t in subset), name="pair_sum"
    )
    ranked = list(priority_incremental_fd(database, ranking))
    scores = [score for _, score in ranked]
    assert scores == sorted(scores, reverse=True)
    assert labels_of(ts for ts, _ in ranked) == labels_of(full_disjunction(database))


@RELAXED
@given(database=small_databases(), threshold=st.floats(min_value=0.0, max_value=16.0))
def test_threshold_variant_returns_exactly_the_qualifying_results(database, threshold):
    ranking = MaxRanking(label_hash_importance)
    expected = {
        ts.labels() for ts in full_disjunction(database) if ranking(ts) >= threshold
    }
    got = list(priority_incremental_fd(database, ranking, threshold=threshold))
    assert {ts.labels() for ts, _ in got} == expected
    assert all(score >= threshold for _, score in got)
