"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.relational import csv_io
from repro.workloads.tourist import tourist_database


@pytest.fixture
def csv_paths(tmp_path):
    """The tourist relations saved as CSV files, as the CLI expects them."""
    paths = csv_io.save_database(tourist_database(), tmp_path / "tourist")
    return [str(path) for path in sorted(paths)]


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fd_defaults(self, csv_paths):
        arguments = build_parser().parse_args(["fd", *csv_paths])
        assert arguments.command == "fd"
        assert arguments.limit is None
        assert arguments.initialization == "singletons"

    def test_topk_requires_k(self, csv_paths):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topk", *csv_paths])

    def test_backend_defaults_to_serial(self, csv_paths):
        arguments = build_parser().parse_args(["fd", *csv_paths])
        assert arguments.backend == "serial"
        assert arguments.workers is None

    def test_backend_rejects_unknown_names(self, csv_paths):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fd", *csv_paths, "--backend", "quantum"])


class TestFdCommand:
    def test_prints_all_six_answers(self, csv_paths, capsys):
        assert main(["fd", *csv_paths]) == 0
        output = capsys.readouterr().out
        assert "{a1, c1}" in output
        assert "(6 answers)" in output

    def test_limit_stops_early(self, csv_paths, capsys):
        assert main(["fd", *csv_paths, "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "(2 answers shown; computation stopped early)" in output

    def test_output_file_is_written(self, csv_paths, tmp_path, capsys):
        target = tmp_path / "fd.csv"
        assert main(["fd", *csv_paths, "--output", str(target)]) == 0
        assert target.exists()
        assert len(csv_io.load_relation(target)) == 6

    def test_initialization_and_index_flags(self, csv_paths, capsys):
        assert main(
            ["fd", *csv_paths, "--use-index", "--initialization", "previous-results"]
        ) == 0
        assert "(6 answers)" in capsys.readouterr().out

    def test_block_size_flag(self, csv_paths, capsys):
        assert main(["fd", *csv_paths, "--block-size", "2"]) == 0
        assert "(6 answers)" in capsys.readouterr().out

    def test_no_csv_files_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["fd"])

    def test_batched_backend_produces_the_same_answers(self, csv_paths, capsys):
        assert main(["fd", *csv_paths, "--backend", "batched", "--use-index"]) == 0
        assert "(6 answers)" in capsys.readouterr().out

    def test_sharded_backend_produces_the_same_answers(self, csv_paths, capsys):
        assert main(["fd", *csv_paths, "--backend", "sharded", "--workers", "2"]) == 0
        assert "(6 answers)" in capsys.readouterr().out


class TestTopkCommand:
    def test_ranks_by_numeric_attribute(self, csv_paths, capsys):
        assert main(
            ["topk", *csv_paths, "--k", "2", "--importance-attribute", "Stars"]
        ) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 2
        # The 4-star Plaza destination ranks first.
        assert "a1" in lines[0]
        assert "4.0" in lines[0]

    def test_without_importance_attribute_all_scores_are_zero(self, csv_paths, capsys):
        assert main(["topk", *csv_paths, "--k", "3"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 3
        assert all("0.0000" in line for line in lines)


class TestApproxCommand:
    def test_exact_similarity_at_threshold_one_matches_fd(self, csv_paths, capsys):
        assert main(
            ["approx", *csv_paths, "--threshold", "1.0", "--similarity", "exact"]
        ) == 0
        output = capsys.readouterr().out
        assert "(6 answers at threshold 1.0)" in output

    def test_edit_similarity_runs(self, csv_paths, capsys):
        assert main(["approx", *csv_paths, "--threshold", "0.8"]) == 0
        assert "answers at threshold 0.8" in capsys.readouterr().out


class TestStreamCommand:
    def test_streams_arrivals_with_one_catalog_build(self, csv_paths, capsys):
        assert main(
            ["stream", *csv_paths, "--arrival-fraction", "0.4", "--batch-size", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "applied" in output
        assert "1 catalog build)" in output

    def test_zero_arrival_fraction_serves_everything_upfront(self, csv_paths, capsys):
        assert main(["stream", *csv_paths, "--arrival-fraction", "0"]) == 0
        output = capsys.readouterr().out
        assert "(6 standing answers over 0 streamed ops" in output

    def test_stream_accepts_a_backend(self, csv_paths, capsys):
        assert main(
            ["stream", *csv_paths, "--backend", "batched", "--use-index"]
        ) == 0
        assert "catalog build)" in capsys.readouterr().out

    def test_delta_mode_matches_recompute_and_reports_work(self, csv_paths, capsys):
        assert main(["stream", *csv_paths, "--arrival-fraction", "0.4"]) == 0
        recompute = capsys.readouterr().out
        assert main(
            ["stream", *csv_paths, "--arrival-fraction", "0.4", "--mode", "delta"]
        ) == 0
        delta = capsys.readouterr().out
        assert "delta maintenance:" in delta
        assert "1 catalog build)" in delta

        def answers(output):
            return {
                line.split("] ", 1)[1]
                for line in output.splitlines()
                if line.startswith("[after")
            }

        assert answers(delta) == answers(recompute)

    def test_ranked_delta_emits_the_recompute_event_stream(self, csv_paths, capsys):
        """The acceptance criterion, end to end through the CLI: identical
        ranked event streams (scores included), strictly fewer candidates."""
        import re

        arguments = [
            "stream", *csv_paths, "--arrival-fraction", "0.4",
            "--rank", "--importance-attribute", "Stars",
        ]
        assert main(arguments) == 0
        recompute = capsys.readouterr().out
        assert main([*arguments, "--mode", "delta"]) == 0
        delta = capsys.readouterr().out

        def ranked_events(output):
            return [
                line for line in output.splitlines() if line.startswith("[after")
            ]

        events = ranked_events(delta)
        assert events == ranked_events(recompute)
        assert all("score" in line for line in events)
        assert "delta maintenance:" in delta

        def recompute_candidates(output):
            # The recompute run reports no delta line; compare through a
            # second delta run's counter against the engine statistics is
            # E11's job — here assert the delta line parses to a number.
            match = re.search(r"delta maintenance: (\d+) candidates", output)
            return int(match.group(1))

        assert recompute_candidates(delta) > 0

    def test_rank_without_attribute_uses_stored_importance(self, csv_paths, capsys):
        assert main(
            ["stream", *csv_paths, "--arrival-fraction", "0.4", "--rank"]
        ) == 0
        output = capsys.readouterr().out
        assert "score" in output

    def test_importance_attribute_without_rank_is_an_error(self, csv_paths):
        with pytest.raises(SystemExit, match="requires --rank"):
            main(["stream", *csv_paths, "--importance-attribute", "Stars"])

    def test_mutations_interleave_and_report_retractions(self, csv_paths, capsys):
        assert main(
            ["stream", *csv_paths, "--arrival-fraction", "0.4",
             "--mode", "delta", "--mutations", "2"]
        ) == 0
        output = capsys.readouterr().out
        assert "2 mutations interleaved" in output
        assert "results retracted" in output
        assert "epoch 2" in output

    def test_mutations_match_between_delta_and_recompute(self, csv_paths, capsys):
        arguments = [
            "stream", *csv_paths, "--arrival-fraction", "0.4", "--mutations", "2",
        ]
        assert main(arguments) == 0
        recompute = capsys.readouterr().out
        assert main([*arguments, "--mode", "delta"]) == 0
        delta = capsys.readouterr().out

        def standing(output):
            live = set()
            for line in output.splitlines():
                if not line.startswith("[after"):
                    continue
                body = line.split("] ", 1)[1]
                if body.startswith("retract "):
                    live.discard(body[len("retract "):])
                else:
                    live.add(body)
            return live

        assert standing(delta) == standing(recompute)

    def test_sharded_backend_is_rejected_in_delta_mode(self, csv_paths):
        with pytest.raises(SystemExit, match="sharded"):
            main(["stream", *csv_paths, "--mode", "delta", "--backend", "sharded"])

    def test_workers_without_sharded_backend_is_an_error(self, csv_paths):
        with pytest.raises(SystemExit, match="--workers"):
            main(["stream", *csv_paths, "--workers", "4"])

    def test_negative_mutations_is_an_error(self, csv_paths):
        with pytest.raises(SystemExit, match="non-negative"):
            main(["stream", *csv_paths, "--mutations", "-1"])


class TestServeCommand:
    def test_smoke_mode_asserts_parity_with_serial(self, capsys):
        assert main(["serve", "--workload", "tourist", "--smoke-clients", "4"]) == 0
        output = capsys.readouterr().out
        assert "smoke OK: 4 concurrent clients" in output
        assert "6 answers" in output

    def test_smoke_mode_with_first_k(self, capsys):
        assert main(
            ["serve", "--workload", "star", "--smoke-clients", "5", "--k", "7"]
        ) == 0
        assert "7 answers" in capsys.readouterr().out

    def test_smoke_mode_over_csv_files(self, csv_paths, capsys):
        assert main(["serve", *csv_paths, "--smoke-clients", "4"]) == 0
        assert "smoke OK" in capsys.readouterr().out

    def test_ranked_smoke_mode(self, capsys):
        assert main(
            ["serve", "--workload", "tourist", "--smoke-clients", "3", "--ranked"]
        ) == 0
        output = capsys.readouterr().out
        assert "smoke OK: 3 concurrent clients" in output
        assert "ranked answers (scores included)" in output

    def test_smoke_only_options_require_smoke_clients(self):
        with pytest.raises(SystemExit, match="--smoke-clients"):
            main(["serve", "--workload", "star", "--k", "5"])
        with pytest.raises(SystemExit, match="--smoke-clients"):
            main(["serve", "--workload", "star", "--ranked"])

    def test_csv_and_workload_are_mutually_exclusive(self, csv_paths):
        with pytest.raises(SystemExit, match="not both"):
            main(["serve", *csv_paths, "--workload", "star", "--smoke-clients", "2"])


class TestTraceCommand:
    def test_trace_of_named_anchor(self, csv_paths, capsys):
        assert main(["trace", *csv_paths, "--anchor", "Climates"]) == 0
        output = capsys.readouterr().out
        assert "Initialization" in output
        assert "(6 iterations, anchor relation 'Climates')" in output

    def test_trace_defaults_to_first_relation(self, csv_paths, capsys):
        assert main(["trace", *csv_paths]) == 0
        assert "iterations, anchor relation 'Accommodations'" in capsys.readouterr().out


class TestPackCommand:
    def test_packs_a_workload_to_a_mirror_file(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        out = str(tmp_path / "star.rpmc")
        assert main(["pack", "star", "--seed", "3", "--out", out]) == 0
        output = capsys.readouterr().out
        assert "packed" in output and "sealed=True" in output
        from repro.relational.catalog_file import load_database

        clone = load_database(out)
        assert clone.tuple_count() > 0

    def test_packs_csv_files(self, csv_paths, tmp_path, capsys):
        pytest.importorskip("numpy")
        out = str(tmp_path / "tourist.rpmc")
        assert main(["pack", *csv_paths, "--out", out]) == 0
        from repro.relational.catalog_file import load_database

        clone = load_database(out)
        assert clone.tuple_count() == 10

    def test_out_is_required(self, csv_paths):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pack", *csv_paths])
