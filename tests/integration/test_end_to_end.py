"""End-to-end integration scenarios combining several subsystems."""

from repro.core.approx import ApproximateFullDisjunction
from repro.core.approx_join import EditDistanceSimilarity, MinJoin
from repro.core.full_disjunction import FullDisjunction, full_disjunction
from repro.core.priority import top_k
from repro.core.ranking import MaxRanking
from repro.relational import csv_io
from repro.relational.operators import remove_subsumed
from repro.workloads.dirty import dirty_sources_database
from repro.workloads.generators import chain_database, star_database
from repro.workloads.tourist import tourist_database, tourist_importance

from tests.conftest import labels_of


class TestCsvToFullDisjunctionPipeline:
    def test_load_compute_materialise_round_trip(self, tmp_path):
        database = tourist_database()
        csv_io.save_database(database, tmp_path / "sources")
        reloaded = csv_io.load_database(
            sorted((tmp_path / "sources").glob("*.csv"))
        )
        fd = FullDisjunction(reloaded)
        result_relation = fd.to_relation("TouristFD")
        assert len(result_relation) == 6
        # The materialised result, being a set of maximal padded rows, is
        # already subsumption-free.
        assert len(remove_subsumed(result_relation)) == 6
        saved = csv_io.save_relation(result_relation, tmp_path / "fd.csv")
        assert len(csv_io.load_relation(saved)) == 6


class TestRankedIntegrationScenario:
    def test_top_1_is_the_four_star_destination(self):
        database = tourist_database()
        ranking = MaxRanking(tourist_importance())
        (best, score), = top_k(database, ranking, 1)
        assert best.labels() == frozenset({"c1", "a1"})
        assert score == 4.0

    def test_ranked_streaming_needs_no_full_materialisation_on_star(self):
        database = star_database(spokes=4, tuples_per_relation=5, hub_domain=2, seed=2)
        ranking = MaxRanking(lambda t: float(len(t.label)))
        results = top_k(database, ranking, 3)
        assert len(results) == 3
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)


class TestApproximateIntegrationScenario:
    def test_dirty_integration_recovers_more_links_than_exact(self):
        database = dirty_sources_database(
            entities=10, sources=3, coverage=1.0, typo_rate=0.4, null_rate=0.0, seed=1
        )
        exact_links = sum(len(ts) - 1 for ts in full_disjunction(database))
        afd = ApproximateFullDisjunction(
            database, MinJoin(EditDistanceSimilarity()), threshold=0.6
        )
        approx_links = sum(len(ts) - 1 for ts in afd.compute())
        assert approx_links >= exact_links

    def test_threshold_one_equals_exact_on_clean_data(self):
        # Fully reliable sources (prob = 1) and no typos: with τ = 1 the
        # approximate full disjunction degenerates to the exact one.
        database = dirty_sources_database(
            entities=8, sources=2, coverage=1.0, typo_rate=0.0, null_rate=0.0, seed=4,
            source_reliability=[1.0, 1.0],
        )
        afd = ApproximateFullDisjunction(
            database, MinJoin(EditDistanceSimilarity()), threshold=1.0
        )
        assert labels_of(afd.compute()) == labels_of(full_disjunction(database))


class TestScalabilitySmoke:
    def test_medium_chain_workload_completes(self):
        database = chain_database(relations=5, tuples_per_relation=15, domain_size=6, seed=0)
        results = full_disjunction(database, use_index=True)
        assert results
        for result in results[:20]:
            assert result.is_jcc

    def test_streaming_prefix_of_a_large_star(self):
        database = star_database(spokes=6, tuples_per_relation=6, hub_domain=2, seed=0)
        fd = FullDisjunction(database, use_index=True)
        prefix = fd.first(10)
        assert len(prefix) == 10
        assert all(ts.is_jcc for ts in prefix)
