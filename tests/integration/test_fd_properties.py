"""Property-based tests: the full disjunction definition holds on random databases.

Definition 2.1 characterises ``FD(R)`` by three properties; on every random
small database we check all three directly, cross-check the algorithm against
the brute-force oracle and against the batch baseline, and verify that the
Section 7 execution variants (indexing, block-based scanning, initialization
strategies) never change the produced set.
"""

from hypothesis import HealthCheck, given, settings

from repro.baselines.batch import batch_full_disjunction
from repro.baselines.naive import all_jcc_tuple_sets, naive_full_disjunction
from repro.core.full_disjunction import full_disjunction, full_disjunction_sets
from repro.core.incremental import incremental_fd

from tests.conftest import labels_of, small_databases

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@RELAXED
@given(database=small_databases())
def test_definition_property_results_are_jcc(database):
    """Definition 2.1(ii): every result is join consistent and connected."""
    for result in full_disjunction(database):
        assert result.is_jcc


@RELAXED
@given(database=small_databases())
def test_definition_property_no_redundancy(database):
    """Definition 2.1(i): no result is strictly contained in another."""
    results = full_disjunction(database)
    for first in results:
        for second in results:
            if first != second:
                assert not first.issubset(second)


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_definition_property_every_jcc_set_is_represented(database):
    """Definition 2.1(iii): every JCC tuple set is contained in some result."""
    results = full_disjunction(database)
    for candidate in all_jcc_tuple_sets(database):
        assert any(candidate.issubset(result) for result in results)


@RELAXED
@given(database=small_databases())
def test_matches_brute_force_oracle(database):
    assert labels_of(full_disjunction(database)) == labels_of(
        naive_full_disjunction(database)
    )


@RELAXED
@given(database=small_databases())
def test_no_duplicate_results(database):
    results = full_disjunction(database)
    assert len(results) == len(set(results))


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_execution_variants_agree(database):
    reference = labels_of(full_disjunction(database))
    assert labels_of(full_disjunction(database, use_index=True)) == reference
    assert labels_of(full_disjunction(database, block_size=2)) == reference
    for strategy in ("previous-results", "reduced-previous"):
        produced = full_disjunction(database, initialization=strategy)
        assert labels_of(produced) == reference
        assert len(produced) == len(reference)


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_batch_baseline_agrees(database):
    assert labels_of(batch_full_disjunction(database)) == labels_of(
        full_disjunction(database)
    )


@RELAXED
@given(database=small_databases())
def test_incremental_fd_per_anchor_partitions_the_result(database):
    """FD(R) = ∪ FD_i(R), and each FD_i contains exactly the results with an R_i tuple."""
    results = full_disjunction(database)
    for relation in database.relations:
        fd_i = labels_of(incremental_fd(database, relation.name))
        expected = {
            ts.labels() for ts in results if ts.contains_tuple_from(relation.name)
        }
        assert fd_i == expected


@RELAXED
@given(database=small_databases())
def test_streaming_prefix_is_a_subset_of_the_full_result(database):
    full = labels_of(full_disjunction(database))
    prefix = []
    for result in full_disjunction_sets(database):
        prefix.append(result)
        if len(prefix) == 3:
            break
    assert labels_of(prefix) <= full
    assert len(prefix) == min(3, len(full))
