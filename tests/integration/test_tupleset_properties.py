"""Property-based tests for the tuple-set data structure invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.triples import TripleList, merge_join_consistent
from repro.core.tupleset import TupleSet

from tests.conftest import small_databases

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def random_subsets(database, rng, count, max_size=3):
    """Draw random tuple subsets (not necessarily JCC) from a database."""
    all_tuples = list(database.tuples())
    subsets = []
    for _ in range(count):
        size = rng.randint(1, min(max_size, len(all_tuples)))
        subsets.append(TupleSet(rng.sample(all_tuples, size)))
    return subsets


@RELAXED
@given(database=small_databases(), seed=st.integers(0, 1000))
def test_union_is_jcc_agrees_with_direct_computation(database, seed):
    """The optimised Line-14 test must agree with recomputing JCC from scratch."""
    rng = random.Random(seed)
    candidates = [ts for ts in random_subsets(database, rng, 8) if ts.is_jcc]
    for first in candidates:
        for second in candidates:
            assert first.union_is_jcc(second) == first.union(second).is_jcc


@RELAXED
@given(database=small_databases(), seed=st.integers(0, 1000))
def test_can_absorb_agrees_with_direct_computation(database, seed):
    rng = random.Random(seed)
    candidates = [ts for ts in random_subsets(database, rng, 6) if ts.is_jcc]
    tuples = list(database.tuples())
    for tuple_set in candidates:
        for t in tuples:
            if t in tuple_set:
                continue
            assert tuple_set.can_absorb(t) == tuple_set.with_tuple(t).is_jcc


@RELAXED
@given(database=small_databases(), seed=st.integers(0, 1000))
def test_maximal_jcc_subset_with_is_correct(database, seed):
    """Footnote 3: the returned set is JCC, contains t_b, and is maximal."""
    rng = random.Random(seed)
    candidates = [ts for ts in random_subsets(database, rng, 6) if ts.is_jcc]
    tuples = list(database.tuples())
    for tuple_set in candidates:
        for t in tuples:
            if t in tuple_set:
                continue
            subset = tuple_set.maximal_jcc_subset_with(t)
            assert t in subset
            assert subset.is_jcc
            assert subset.issubset(tuple_set.with_tuple(t))
            for dropped in tuple_set:
                if dropped not in subset:
                    assert not subset.can_absorb(dropped)


@RELAXED
@given(database=small_databases(), seed=st.integers(0, 1000))
def test_triple_list_check_agrees_with_tuple_set_check(database, seed):
    """The paper's sorted-triple representation decides the same consistency facts."""
    rng = random.Random(seed)
    candidates = [ts for ts in random_subsets(database, rng, 6) if ts.is_jcc]
    for first in candidates:
        for second in candidates:
            consistent, shares = merge_join_consistent(
                TripleList.from_tuple_set(first), TripleList.from_tuple_set(second)
            )
            same_relation_conflict = any(
                first.tuple_from(name) is not None
                and second.tuple_from(name) is not None
                and first.tuple_from(name) != second.tuple_from(name)
                for name in first.relations | second.relations
            )
            shares_member = bool(first.tuples & second.tuples)
            expected = first.union(second).is_jcc
            derived = consistent and (shares or shares_member) and not same_relation_conflict
            assert derived == expected


@RELAXED
@given(database=small_databases())
def test_tuple_set_hash_and_equality_are_order_insensitive(database):
    tuples = list(database.tuples())
    forward = TupleSet(tuples)
    backward = TupleSet(reversed(tuples))
    assert forward == backward
    assert hash(forward) == hash(backward)
