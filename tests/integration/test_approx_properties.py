"""Property-based tests for the approximate full disjunction (Section 6)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.naive import naive_approx_full_disjunction
from repro.core.approx import approx_full_disjunction
from repro.core.approx_join import (
    EditDistanceSimilarity,
    ExactJoin,
    ExactMatchSimilarity,
    MinJoin,
    ProductJoin,
)
from repro.core.full_disjunction import full_disjunction

from tests.conftest import labels_of, small_databases

RELAXED = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

THRESHOLDS = st.sampled_from([0.25, 0.5, 0.75, 1.0])


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3), threshold=THRESHOLDS)
def test_min_join_matches_the_brute_force_oracle(database, threshold):
    amin = MinJoin(ExactMatchSimilarity())
    expected = labels_of(naive_approx_full_disjunction(database, amin, threshold))
    produced = approx_full_disjunction(database, amin, threshold)
    assert labels_of(produced) == expected
    assert len(produced) == len(expected)


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3), threshold=THRESHOLDS)
def test_edit_distance_min_join_matches_the_oracle(database, threshold):
    amin = MinJoin(EditDistanceSimilarity())
    expected = labels_of(naive_approx_full_disjunction(database, amin, threshold))
    assert labels_of(approx_full_disjunction(database, amin, threshold)) == expected


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_product_join_matches_the_oracle(database):
    aprod = ProductJoin(EditDistanceSimilarity())
    for threshold in (0.4, 0.8):
        expected = labels_of(naive_approx_full_disjunction(database, aprod, threshold))
        assert labels_of(approx_full_disjunction(database, aprod, threshold)) == expected


@RELAXED
@given(database=small_databases())
def test_exact_join_adapter_reduces_to_the_exact_full_disjunction(database):
    assert labels_of(approx_full_disjunction(database, ExactJoin(), 1.0)) == labels_of(
        full_disjunction(database)
    )


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3), threshold=THRESHOLDS)
def test_results_qualify_are_maximal_and_unique(database, threshold):
    amin = MinJoin(EditDistanceSimilarity())
    results = approx_full_disjunction(database, amin, threshold)
    assert len(results) == len(set(results))
    for result in results:
        assert amin(result) >= threshold
        for other in results:
            if result != other:
                assert not result.issubset(other)


@RELAXED
@given(database=small_databases(max_relations=3, max_tuples=3))
def test_coverage_is_monotone_in_the_threshold(database):
    """Lowering τ never loses information: every stricter result stays covered."""
    amin = MinJoin(EditDistanceSimilarity())
    strict = approx_full_disjunction(database, amin, 0.9)
    loose = approx_full_disjunction(database, amin, 0.3)
    for result in strict:
        assert any(result.issubset(other) for other in loose)
