"""Crash recovery: snapshot + WAL replay rebuilds byte-identical servers.

Two layers of coverage:

* In-process: durable servers crashed by *dropping* them (no shutdown, no
  final snapshot), recovered, and compared stream-for-stream against an
  uninterrupted twin — including cached first-k prefixes served with zero
  recompute and torn WAL tails injected by hand.
* Kill-injection: a real child process SIGKILLed mid-ingest at seeded
  random points; the parent recovers its data directory and asserts the
  recovered server equals a twin that applied exactly the durable prefix.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import subprocess
import sys

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.relational.database import Database
from repro.service.cache import database_generation
from repro.service.server import (
    QueryServer,
    open_durable_server,
    restore_server,
)
from repro.storage.store import RecoveryError
from repro.storage.wal import WAL_NAME, encode_frame, recover_wal

from tests.storage._workload import (
    TOTAL_OPS,
    build_database,
    op_request,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _run(coroutine):
    return asyncio.run(coroutine)


async def _apply_ops(state: QueryServer, count: int) -> None:
    for index in range(count):
        response = await state.handle_request(op_request(state.database, index))
        assert response.get("ok"), response


async def _fd_stream(state: QueryServer) -> tuple:
    opened = await state.handle_request({"op": "open", "engine": "fd"})
    assert opened.get("ok"), opened
    pulled = await state.handle_request(
        {"op": "next", "session": opened["session"], "k": 100_000}
    )
    assert pulled.get("ok"), pulled
    await state.handle_request({"op": "close", "session": opened["session"]})
    return opened, pulled["results"]


def _twin_after(count: int) -> QueryServer:
    """An uninterrupted in-memory server that applied ops ``0..count-1``."""
    twin = QueryServer(build_database())
    _run(_apply_ops(twin, count))
    return twin


class TestInProcessRecovery:
    def test_recovered_server_equals_uninterrupted_twin(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=5, registry=MetricsRegistry()
        )
        _run(_apply_ops(state, 12))
        generation = list(database_generation(state.database))
        del state  # crash: no shutdown, no final snapshot

        recovered = open_durable_server(
            None, str(tmp_path), registry=MetricsRegistry()
        )
        info = recovered.store.recovery_info
        assert info["recovered"] is True
        assert info["replayed_records"] < 12  # snapshots folded most of the WAL
        assert list(database_generation(recovered.database)) == generation
        _, recovered_stream = _run(_fd_stream(recovered))
        _, twin_stream = _run(_fd_stream(_twin_after(12)))
        assert recovered_stream == twin_stream

    def test_recovered_server_keeps_serving_durably(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=None,
            registry=MetricsRegistry(),
        )
        _run(_apply_ops(state, 6))
        del state
        recovered = open_durable_server(
            None, str(tmp_path), snapshot_every=None, registry=MetricsRegistry()
        )
        _run(
            _apply_ops_from(recovered, start=6, stop=10)
        )
        del recovered
        again = open_durable_server(
            None, str(tmp_path), snapshot_every=None, registry=MetricsRegistry()
        )
        _, stream = _run(_fd_stream(again))
        _, twin_stream = _run(_fd_stream(_twin_after(10)))
        assert stream == twin_stream

    def test_cached_prefix_survives_recovery_with_zero_recompute(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=None,
            registry=MetricsRegistry(),
        )
        opened, stream = _run(_fd_stream(state))
        assert opened["cached"] is False
        snapped = _run(state.handle_request({"op": "snapshot"}))
        assert snapped["ok"], snapped
        del state

        recovered = open_durable_server(
            None, str(tmp_path), registry=MetricsRegistry()
        )
        hits_before = recovered.cache.hits
        reopened, recovered_stream = _run(_fd_stream(recovered))
        assert reopened["cached"] is True  # served from the restored prefix
        assert recovered.cache.hits == hits_before + 1
        assert recovered_stream == stream

    def test_recovered_stream_session_serves_the_live_log(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=None,
            registry=MetricsRegistry(),
        )

        async def stream_scenario(server):
            opened = await server.handle_request({"op": "open", "engine": "stream"})
            assert opened.get("ok"), opened
            pulled = await server.handle_request(
                {"op": "next", "session": opened["session"], "k": 100_000}
            )
            return pulled["results"]

        base = _run(stream_scenario(state))
        assert base
        _run(_apply_ops(state, 4))
        snapped = _run(state.handle_request({"op": "snapshot"}))
        assert snapped["ok"], snapped
        del state

        recovered = open_durable_server(None, str(tmp_path), registry=MetricsRegistry())
        twin = _twin_after(4)
        assert _run(stream_scenario(recovered)) == _run(stream_scenario(twin))

    def test_torn_tail_is_truncated_and_prefix_recovered(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=None,
            registry=MetricsRegistry(),
        )
        _run(_apply_ops(state, 8))
        state.store.wal.sync()
        wal_path = state.store.wal.path
        del state
        # Crash mid-append: half a valid frame, then garbage.
        frame = encode_frame({"kind": "ingest", "ops": [], "generation": [0, 0, 0, 0]})
        with open(wal_path, "ab") as handle:
            handle.write(frame[: len(frame) - 4])

        recovered = open_durable_server(None, str(tmp_path), registry=MetricsRegistry())
        info = recovered.store.recovery_info
        assert info["truncated_bytes"] == len(frame) - 4
        assert info["replayed_records"] == 8
        _, stream = _run(_fd_stream(recovered))
        _, twin_stream = _run(_fd_stream(_twin_after(8)))
        assert stream == twin_stream

    def test_wal_without_snapshot_is_refused(self, tmp_path):
        with open(tmp_path / WAL_NAME, "wb") as handle:
            handle.write(
                encode_frame({"kind": "ingest", "ops": [], "generation": [0, 0, 0, 0]})
            )
        with pytest.raises(RecoveryError):
            open_durable_server(None, str(tmp_path), registry=MetricsRegistry())

    def test_empty_directory_without_database_is_refused(self, tmp_path):
        with pytest.raises(RecoveryError):
            open_durable_server(None, str(tmp_path), registry=MetricsRegistry())

    def test_replay_divergence_is_detected(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), snapshot_every=None,
            registry=MetricsRegistry(),
        )
        _run(_apply_ops(state, 3))
        state.store.wal.sync()
        wal_path = state.store.wal.path
        del state
        # Rewrite the last record with a wrong generation token: replay must
        # refuse to serve the divergent state.
        records, _, _ = recover_wal(wal_path)
        payload, _ = records[-1]
        start = records[-2][1]
        payload["generation"] = [9, 9, 9, 9]
        blob = open(wal_path, "rb").read()
        open(wal_path, "wb").write(blob[:start] + encode_frame(payload))
        with pytest.raises(RecoveryError, match="diverged"):
            open_durable_server(None, str(tmp_path), registry=MetricsRegistry())

    def test_restore_state_round_trips_the_database(self):
        database = build_database()
        state = QueryServer(database)
        _run(_apply_ops(state, 9))
        restored = Database.restore_state(database.snapshot_state())
        assert list(database_generation(restored)) == list(
            database_generation(database)
        )
        assert restored.snapshot_state() == database.snapshot_state()

    def test_restore_server_is_read_only_when_asked(self, tmp_path):
        state = open_durable_server(
            build_database(), str(tmp_path), registry=MetricsRegistry()
        )
        assert state.store is not None
        follower = restore_server(_latest_snapshot(tmp_path), read_only=True)
        refusal = _run(
            follower.handle_request({"op": "ingest", "tuples": [["S1", ["a", "b"]]]})
        )
        assert refusal == {
            "ok": False,
            "error": "ingest refused: this replica is read-only (follower mode)",
            "read_only": True,
        }
        snap_refusal = _run(follower.handle_request({"op": "snapshot"}))
        assert snap_refusal["ok"] is False


def _latest_snapshot(tmp_path):
    from repro.storage.snapshot import load_latest_snapshot

    document, _ = load_latest_snapshot(str(tmp_path))
    return document


async def _apply_ops_from(state: QueryServer, start: int, stop: int) -> None:
    for index in range(start, stop):
        response = await state.handle_request(op_request(state.database, index))
        assert response.get("ok"), response


class TestKillInjection:
    """SIGKILL a real serving process mid-ingest; recover; assert parity."""

    def _crashed_run(self, tmp_path, kill_after: int) -> None:
        process = subprocess.Popen(
            [sys.executable, "-m", "tests.storage._kill_child", str(tmp_path)],
            stdout=subprocess.PIPE,
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    [os.path.join(REPO_ROOT, "src"), REPO_ROOT]
                ),
            },
            text=True,
        )
        try:
            applied = 0
            for line in process.stdout:
                if line.startswith("applied"):
                    applied += 1
                if applied >= kill_after:
                    break
            os.kill(process.pid, signal.SIGKILL)
        finally:
            process.stdout.close()
            process.wait(timeout=30)
        assert process.returncode == -signal.SIGKILL

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sigkill_mid_ingest_recovers_to_the_durable_prefix(self, tmp_path, seed):
        kill_after = random.Random(seed).randint(1, TOTAL_OPS - 2)
        self._crashed_run(tmp_path, kill_after)

        # The WAL (not the child's stdout) is the ground truth of what
        # survived: one record per applied batch, torn tail truncated.
        records, _, _ = recover_wal(str(tmp_path / WAL_NAME))
        durable = len(records)
        assert durable >= kill_after  # apply-then-log: every acked op is on disk

        recovered = open_durable_server(None, str(tmp_path), registry=MetricsRegistry())
        assert recovered.store.recovery_info["recovered"] is True
        twin = _twin_after(durable)
        assert list(database_generation(recovered.database)) == list(
            database_generation(twin.database)
        )
        _, recovered_stream = _run(_fd_stream(recovered))
        _, twin_stream = _run(_fd_stream(twin))
        assert recovered_stream == twin_stream
        assert recovered.maintainer.arrivals_applied == twin.maintainer.arrivals_applied
        assert recovered.maintainer.mutations_applied == twin.maintainer.mutations_applied
