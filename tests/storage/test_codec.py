"""The canonical stream-op codec: record form, wire form, round trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.relational.nulls import NULL
from repro.storage.codec import (
    CodecError,
    arrival_from_wire,
    decode_op,
    decode_ops,
    encode_op,
    encode_ops,
    normalize_stream_op,
    op_to_wire,
    removal_from_wire,
    update_from_wire,
)
from repro.workloads.streaming import Arrival, Removal, Update

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)
_values = st.lists(
    st.one_of(
        st.none(),  # a null cell, spelled the JSON way
        st.just(NULL),  # a null cell, spelled the in-process way
        _names,
        st.integers(min_value=-100, max_value=100),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    ),
    min_size=1,
    max_size=5,
)
_numbers = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _arrivals():
    return st.builds(
        Arrival,
        _names,
        _values.map(tuple),
        _numbers,
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )


def _removals():
    return st.builds(Removal, _names, _names)


def _updates():
    return st.builds(
        Update,
        _names,
        _names,
        _values.map(tuple),
        st.one_of(st.none(), _numbers),
        st.one_of(st.none(), _numbers),
    )


def _ops():
    return st.one_of(_arrivals(), _removals(), _updates())


def _normalized(op):
    """The canonical twin: values null-normalized to the NULL singleton."""
    if isinstance(op, Removal):
        return op
    values = tuple(NULL if v is None or v is NULL else v for v in op.values)
    return op._replace(values=values)


class TestRecordRoundTrip:
    @RELAXED
    @given(op=_ops())
    def test_record_round_trip_is_identity_after_null_normalization(self, op):
        assert decode_op(encode_op(op)) == _normalized(op)

    @RELAXED
    @given(op=_ops())
    def test_records_are_json_stable(self, op):
        record = encode_op(op)
        over_the_wire = json.loads(
            json.dumps(record, sort_keys=True, separators=(",", ":"))
        )
        assert decode_op(over_the_wire) == _normalized(op)

    @RELAXED
    @given(ops=st.lists(_ops(), max_size=6))
    def test_batch_round_trip(self, ops):
        assert decode_ops(encode_ops(ops)) == [_normalized(op) for op in ops]

    def test_defaults_are_omitted_from_records(self):
        record = encode_op(Arrival("R", ("a", None)))
        assert record == {"kind": "arrival", "relation": "R", "values": ["a", None]}

    def test_plain_tuples_are_accepted_as_arrivals(self):
        assert decode_op(encode_op(("R", ("a",), 2.0))) == Arrival("R", ("a",), 2.0)
        assert normalize_stream_op(("R", ("a",))) == Arrival("R", ("a",))

    def test_unknown_kind_is_refused(self):
        with pytest.raises(CodecError):
            decode_op({"kind": "mystery", "relation": "R"})

    def test_non_scalar_values_are_refused(self):
        with pytest.raises(CodecError):
            encode_op(Arrival("R", (object(),)))


class TestWireRoundTrip:
    @RELAXED
    @given(op=_arrivals())
    def test_arrival_wire_round_trip(self, op):
        assert arrival_from_wire(op_to_wire(op)) == _normalized(op)

    @RELAXED
    @given(op=_removals())
    def test_removal_wire_round_trip(self, op):
        assert removal_from_wire(op_to_wire(op)) == op

    @RELAXED
    @given(op=_updates())
    def test_update_wire_round_trip(self, op):
        if op.probability is not None and op.importance is None:
            # Positional wire entries cannot skip the importance slot.
            with pytest.raises(CodecError):
                op_to_wire(op)
        else:
            assert update_from_wire(op_to_wire(op)) == _normalized(op)

    def test_wire_shapes_match_the_served_protocol(self):
        assert op_to_wire(Arrival("R", ("a", NULL))) == ["R", ["a", None]]
        assert op_to_wire(Removal("R", "r1")) == ["R", "r1"]
        assert op_to_wire(Update("R", "r1", ("b",))) == ["R", "r1", ["b"]]

    def test_legacy_error_messages_are_preserved(self):
        with pytest.raises(CodecError, match=r"\[relation, label\] pairs"):
            removal_from_wire(["R"])
        with pytest.raises(CodecError, match=r"\[relation, label, values\] triples"):
            update_from_wire(["R", "r1"])
