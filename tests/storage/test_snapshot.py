"""Snapshot files: checksums, atomic replacement, retention, fallback."""

from __future__ import annotations

import os

from repro.storage.snapshot import (
    KEEP_SNAPSHOTS,
    external_references,
    list_snapshots,
    load_latest_snapshot,
    load_snapshot,
    write_snapshot,
)


class TestWriteAndLoad:
    def test_round_trip_preserves_the_payload(self, tmp_path):
        payload = {"database": {"epoch": 3}, "wal_offset": 128}
        path = write_snapshot(str(tmp_path), payload, seq=1)
        document = load_snapshot(path)
        assert document["database"] == {"epoch": 3}
        assert document["wal_offset"] == 128
        assert document["seq"] == 1

    def test_no_tmp_file_survives_a_write(self, tmp_path):
        write_snapshot(str(tmp_path), {"x": 1}, seq=1)
        assert not [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]

    def test_missing_directory_lists_empty(self, tmp_path):
        assert list_snapshots(str(tmp_path / "absent")) == []
        assert load_latest_snapshot(str(tmp_path / "absent")) is None


class TestCorruption:
    def test_a_flipped_byte_fails_validation(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": 1}, seq=1)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        assert load_snapshot(path) is None

    def test_truncated_document_fails_validation(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": 1}, seq=1)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert load_snapshot(path) is None

    def test_corrupt_newest_falls_back_to_its_predecessor(self, tmp_path):
        write_snapshot(str(tmp_path), {"which": "old"}, seq=1)
        newest = write_snapshot(str(tmp_path), {"which": "new"}, seq=2)
        open(newest, "wb").write(b"garbage")
        loaded = load_latest_snapshot(str(tmp_path))
        assert loaded is not None
        document, path = loaded
        assert document["which"] == "old"
        assert path.endswith("snapshot-00000001.json")

    def test_all_corrupt_means_none(self, tmp_path):
        path = write_snapshot(str(tmp_path), {"x": 1}, seq=1)
        open(path, "wb").write(b"junk")
        assert load_latest_snapshot(str(tmp_path)) is None


class TestRetention:
    def test_only_the_last_generations_are_kept(self, tmp_path):
        for seq in range(1, 6):
            write_snapshot(str(tmp_path), {"seq_payload": seq}, seq=seq)
        kept = list_snapshots(str(tmp_path))
        assert len(kept) == KEEP_SNAPSHOTS
        assert [seq for seq, _ in kept] == [5, 4]

    def test_latest_wins(self, tmp_path):
        write_snapshot(str(tmp_path), {"which": "old"}, seq=1)
        write_snapshot(str(tmp_path), {"which": "new"}, seq=2)
        document, _ = load_latest_snapshot(str(tmp_path))
        assert document["which"] == "new"


class TestExternalReferences:
    """By-reference tuple entries: snapshots that point at mirror files."""

    def _ref_payload(self, path):
        return {
            "database": {
                "tuples_ref": {
                    "path": path, "count": 0, "payload_length": 0, "dead_mask": "0",
                }
            }
        }

    def test_references_are_collected_recursively(self, tmp_path):
        payload = self._ref_payload("/somewhere/mirror.rpmc")
        payload["nested"] = [{"deep": self._ref_payload("/elsewhere/other.rpmc")}]
        assert sorted(external_references(payload)) == [
            "/elsewhere/other.rpmc",
            "/somewhere/mirror.rpmc",
        ]
        assert external_references({"database": {"tuples": []}}) == []

    def test_missing_reference_fails_validation_when_checked(self, tmp_path):
        payload = self._ref_payload(str(tmp_path / "vanished.rpmc"))
        path = write_snapshot(str(tmp_path), payload, seq=1)
        assert load_snapshot(path) is not None  # checksum is fine
        assert load_snapshot(path, check_references=True) is None

    def test_present_reference_passes_the_check(self, tmp_path):
        mirror = tmp_path / "mirror.rpmc"
        mirror.write_bytes(b"\x00")
        path = write_snapshot(str(tmp_path), self._ref_payload(str(mirror)), seq=1)
        assert load_snapshot(path, check_references=True) is not None

    def test_latest_falls_back_past_a_dangling_reference(self, tmp_path):
        write_snapshot(str(tmp_path), {"which": "inline"}, seq=1)
        write_snapshot(
            str(tmp_path), self._ref_payload(str(tmp_path / "gone.rpmc")), seq=2
        )
        loaded = load_latest_snapshot(str(tmp_path))
        assert loaded is not None
        document, _ = loaded
        assert document["which"] == "inline"
