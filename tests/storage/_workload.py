"""Deterministic mutation workload shared by the kill-injection suite.

The child process (:mod:`tests.storage._kill_child`) applies these
requests one by one against a durable server until it is SIGKILLed; the
parent test replays the same prefix against an uninterrupted twin.  The
sequence is a pure function of the op index and the *current* database
state, so any prefix replays identically on both sides.
"""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.nulls import is_null
from repro.workloads.generators import star_database

TOTAL_OPS = 18
SNAPSHOT_EVERY = 4
FSYNC_EVERY = 2


def build_database() -> Database:
    return star_database(spokes=3, tuples_per_relation=4, hub_domain=2, seed=7)


def op_request(database: Database, index: int) -> dict:
    """The ``index``-th wire mutation, valid against the current state."""
    relations = database.relations
    if index % 5 == 4:
        target = relations[1 + index % 2]
        labels = sorted(t.label for t in target)
        if labels:
            return {"op": "retract", "tuples": [[target.name, labels[0]]]}
    if index % 7 == 3:
        target = relations[2]
        tuples = sorted(target, key=lambda t: t.label)
        if tuples:
            t = tuples[-1]
            values = [None if is_null(v) else str(v) for v in t.values]
            return {
                "op": "update",
                "tuples": [[target.name, t.label, values, float(index)]],
            }
    target = relations[index % len(relations)]
    return {
        "op": "ingest",
        "tuples": [[target.name, [f"h{index % 2 + 1}", f"x{index}"], float(index % 3)]],
    }
