"""Child process of the kill-injection suite: ingest until SIGKILLed.

Run as ``python -m tests.storage._kill_child <data_dir>``.  Opens a
durable server on ``data_dir``, applies the shared deterministic workload
one mutation at a time, and prints ``applied <i>`` after each ack — the
parent reads those lines to decide when to SIGKILL.
"""

from __future__ import annotations

import asyncio
import sys

from repro.service.server import open_durable_server

from tests.storage._workload import (
    FSYNC_EVERY,
    SNAPSHOT_EVERY,
    TOTAL_OPS,
    build_database,
    op_request,
)


def main() -> int:
    data_dir = sys.argv[1]
    state = open_durable_server(
        build_database(),
        data_dir,
        snapshot_every=SNAPSHOT_EVERY,
        fsync_every=FSYNC_EVERY,
    )

    async def run() -> None:
        for index in range(TOTAL_OPS):
            response = await state.handle_request(op_request(state.database, index))
            assert response.get("ok"), response
            print(f"applied {index}", flush=True)
        print("done", flush=True)

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
