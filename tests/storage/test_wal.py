"""The write-ahead log: framing, group commit, and the two tail policies."""

from __future__ import annotations

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage.wal import (
    WriteAheadLog,
    encode_frame,
    read_available,
    recover_wal,
)
from repro.workloads.streaming import Arrival, Removal


def _wal(tmp_path, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return WriteAheadLog(str(tmp_path / "wal.log"), **kwargs)


class TestAppendAndRecover:
    def test_appended_records_recover_in_order(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append("ingest", [Arrival("R", ("a", None))], (0, 0, 1, 1))
        wal.append("retract", [Removal("R", "r1")], (0, 1, 1, 1))
        wal.close()
        records, good_end, truncated = recover_wal(wal.path)
        assert truncated == 0
        assert good_end == os.path.getsize(wal.path) == wal.offset
        assert [payload["kind"] for payload, _ in records] == ["ingest", "retract"]
        assert records[0][0]["generation"] == [0, 0, 1, 1]
        assert all("ts" in payload for payload, _ in records)
        # End offsets are absolute and strictly increasing: snapshot/replay
        # filtering depends on them.
        ends = [end for _, end in records]
        assert ends == sorted(ends) and ends[-1] == good_end

    def test_missing_file_reads_as_empty(self, tmp_path):
        path = str(tmp_path / "absent.log")
        assert recover_wal(path) == ([], 0, 0)
        assert read_available(path) == ([], 0)

    def test_fsync_batches_at_the_group_commit_cadence(self, tmp_path):
        wal = _wal(tmp_path, fsync_every=4)
        for index in range(7):
            wal.append("ingest", [Arrival("R", (str(index),))], (0, 0, 1, 1))
        assert wal.fsyncs == 1  # one full group of 4; 3 still pending
        wal.sync()
        assert wal.fsyncs == 2
        wal.sync()  # nothing pending: no extra fsync
        assert wal.fsyncs == 2
        wal.close()

    def test_fsync_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            _wal(tmp_path, fsync_every=0)


class TestTornTails:
    def _torn(self, tmp_path, keep: int):
        """A WAL of 3 records whose last frame is cut to ``keep`` bytes."""
        wal = _wal(tmp_path)
        offsets = [
            wal.append("ingest", [Arrival("R", (str(i),))], (0, 0, 1, 1))
            for i in range(3)
        ]
        wal.close()
        with open(wal.path, "r+b") as handle:
            handle.truncate(offsets[1] + keep)
        return wal.path, offsets

    def test_recovery_truncates_a_torn_tail(self, tmp_path):
        path, offsets = self._torn(tmp_path, keep=5)
        records, good_end, truncated = recover_wal(path)
        assert len(records) == 2
        assert good_end == offsets[1]
        assert truncated == 5
        assert os.path.getsize(path) == offsets[1]
        # Idempotent: a second recovery sees a clean log.
        assert recover_wal(path) == (records, good_end, 0)

    def test_recovered_log_accepts_new_appends(self, tmp_path):
        path, offsets = self._torn(tmp_path, keep=3)
        recover_wal(path)
        wal = WriteAheadLog(path, registry=MetricsRegistry())
        assert wal.offset == offsets[1]
        wal.append("ingest", [Arrival("R", ("fresh",))], (0, 0, 1, 2))
        wal.close()
        records, _, truncated = recover_wal(path)
        assert truncated == 0
        assert [p["ops"][0]["values"] for p, _ in records] == [["0"], ["1"], ["fresh"]]

    def test_corrupt_mid_log_byte_marks_the_end(self, tmp_path):
        wal = _wal(tmp_path)
        first_end = wal.append("ingest", [Arrival("R", ("a",))], (0, 0, 1, 1))
        wal.append("ingest", [Arrival("R", ("b",))], (0, 0, 1, 2))
        wal.close()
        with open(wal.path, "r+b") as handle:
            handle.seek(first_end + 12)
            handle.write(b"\xff")
        records, good_end, truncated = recover_wal(wal.path)
        assert [p["ops"][0]["values"] for p, _ in records] == [["a"]]
        assert good_end == first_end and truncated > 0

    def test_follower_read_never_truncates_a_partial_tail(self, tmp_path):
        path, offsets = self._torn(tmp_path, keep=5)
        size_before = os.path.getsize(path)
        records, new_offset = read_available(path)
        assert len(records) == 2
        assert new_offset == offsets[1]
        assert os.path.getsize(path) == size_before  # untouched

    def test_follower_resumes_from_its_offset(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append("ingest", [Arrival("R", ("a",))], (0, 0, 1, 1))
        wal.sync()
        first, offset = read_available(wal.path)
        assert [p["ops"][0]["values"] for p, _ in first] == [["a"]]
        assert read_available(wal.path, offset) == ([], offset)
        wal.append("ingest", [Arrival("R", ("b",))], (0, 0, 1, 2))
        wal.sync()
        second, _ = read_available(wal.path, offset)
        assert [p["ops"][0]["values"] for p, _ in second] == [["b"]]
        assert all(end > offset for _, end in second)
        wal.close()

    def test_tail_completion_yields_the_pending_record(self, tmp_path):
        # A frame that is partial on one poll and complete on the next must
        # be served exactly once, from the same offset.
        wal = _wal(tmp_path)
        wal.append("ingest", [Arrival("R", ("a",))], (0, 0, 1, 1))
        wal.close()
        frame = encode_frame({"kind": "ingest", "ops": [], "generation": [0, 0, 1, 1]})
        _, offset = read_available(wal.path)
        with open(wal.path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        pending, stuck = read_available(wal.path, offset)
        assert pending == [] and stuck == offset
        with open(wal.path, "ab") as handle:
            handle.write(frame[len(frame) // 2 :])
        done, moved = read_available(wal.path, offset)
        assert len(done) == 1 and moved == offset + len(frame)
