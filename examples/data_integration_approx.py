"""Approximate full disjunctions for dirty-data integration (Section 6).

The scenario: three web sources describe the same set of entities, but the
entity names were extracted by imperfect wrappers, so they contain spelling
errors, and each source has a known reliability.  The exact full disjunction
keeps misspelled records apart; the ``(A, τ)``-approximate full disjunction
with the ``A_min`` join function and an edit-distance similarity re-links
them, trading precision against recall through the threshold ``τ``.

The script also reproduces the worked numbers of Examples 6.1 and 6.3
(Fig. 4) on the noisy tourist data.

Run with::

    python examples/data_integration_approx.py
"""

from __future__ import annotations

from repro import (
    ApproximateFullDisjunction,
    EditDistanceSimilarity,
    MinJoin,
    ProductJoin,
    full_disjunction,
)
from repro.core.tupleset import TupleSet
from repro.workloads.dirty import dirty_sources_database
from repro.workloads.tourist import noisy_tourist_database, noisy_tourist_similarity


def figure4_worked_examples() -> None:
    print("Worked examples of Section 6 (Fig. 4)")
    print("=====================================")
    database = noisy_tourist_database()
    similarity = noisy_tourist_similarity()
    amin = MinJoin(similarity)
    aprod = ProductJoin(similarity)

    t1 = TupleSet(database.tuple_by_label(label) for label in ("c1", "a2", "s2"))
    print(f"A_min({{c1, a2, s2}})  = {amin(t1):.2f}   (paper: 0.5)")
    print(f"A_prod({{c1, a2, s2}}) = {aprod(t1):.2f}   (paper: 0.32)")

    base = TupleSet(database.tuple_by_label(label) for label in ("c1", "s1", "a2"))
    s2 = database.tuple_by_label("s2")
    amin_extensions = amin.candidate_extensions(base, s2, 0.4)
    aprod_extensions = aprod.candidate_extensions(base, s2, 0.4)
    print(f"A_min maximal qualifying subsets containing s2 (τ=0.4): {amin_extensions}")
    print(f"A_prod maximal qualifying subsets containing s2 (τ=0.4): {sorted(map(repr, aprod_extensions))}")

    print("\nApproximate full disjunction of the noisy tourist data (A_min, τ=0.4)")
    afd = ApproximateFullDisjunction(database, amin, threshold=0.4)
    print(afd.pretty())


def dirty_integration_sweep() -> None:
    print("\n\nIntegrating three unreliable sources")
    print("====================================")
    database = dirty_sources_database(
        entities=15, sources=3, coverage=0.9, typo_rate=0.35, null_rate=0.05, seed=7,
        source_reliability=[1.0, 0.95, 0.9],
    )
    for relation in database:
        reliability = relation.tuples[0].probability if len(relation) else 1.0
        print(f"  {relation.name}: {len(relation)} records, reliability {reliability}")

    exact = full_disjunction(database)
    exact_linked = sum(1 for ts in exact if len(ts) > 1)
    print(f"\nExact full disjunction: {len(exact)} answers, {exact_linked} linking two or more sources")

    amin = MinJoin(EditDistanceSimilarity())
    print(f"\n{'τ':>6}  {'answers':>8}  {'linked':>7}  {'largest':>8}")
    for threshold in (0.9, 0.8, 0.7, 0.6, 0.5):
        afd = ApproximateFullDisjunction(database, amin, threshold=threshold)
        results = afd.compute()
        linked = sum(1 for ts in results if len(ts) > 1)
        largest = max(len(ts) for ts in results)
        print(f"{threshold:>6.2f}  {len(results):>8}  {linked:>7}  {largest:>8}")
    print(
        "\nLowering τ links more records across sources (higher recall), at the "
        "price of accepting weaker matches."
    )


def main() -> None:
    figure4_worked_examples()
    dirty_integration_sweep()


if __name__ == "__main__":
    main()
