"""Quickstart: compute the full disjunction of the paper's tourist example.

This script reproduces Tables 1–3 of Cohen & Sagiv end to end:

1. build the three source relations of Table 1 (with their null values),
2. compute the full disjunction and print it in the layout of Table 2,
3. stream the first results one by one (the reason the algorithm is
   *incremental*), and
4. print the execution trace of ``IncrementalFD(R, 1)`` — Table 3.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, FullDisjunction, Relation, NULL, format_trace, trace_incremental_fd


def build_tourist_database() -> Database:
    """Table 1, built through the public API (see repro.workloads.tourist for
    the packaged version of the same data)."""
    climates = Relation("Climates", ["Country", "Climate"], label_prefix="c")
    climates.add(["Canada", "diverse"])
    climates.add(["UK", "temperate"])
    climates.add(["Bahamas", "tropical"])

    accommodations = Relation(
        "Accommodations", ["Country", "City", "Hotel", "Stars"], label_prefix="a"
    )
    accommodations.add(["Canada", "Toronto", "Plaza", 4])
    accommodations.add(["Canada", "London", "Ramada", 3])
    accommodations.add(["Bahamas", "Nassau", "Hilton", NULL])

    sites = Relation("Sites", ["Country", "City", "Site"], label_prefix="s")
    sites.add(["Canada", "London", "Air Show"])
    sites.add(["Canada", NULL, "Mount Logan"])
    sites.add(["UK", "London", "Buckingham"])
    sites.add(["UK", "London", "Hyde Park"])

    return Database([climates, accommodations, sites])


def main() -> None:
    database = build_tourist_database()

    print("Source relations (Table 1)")
    print("==========================")
    for relation in database:
        print(f"\n{relation.name}")
        print(relation.pretty())

    fd = FullDisjunction(database)

    print("\n\nFull disjunction (Table 2)")
    print("==========================")
    print(fd.pretty())

    print("\n\nStreaming access (incremental delivery)")
    print("=======================================")
    for index, tuple_set in enumerate(fd, start=1):
        print(f"answer {index}: {tuple_set}")
        if index == 3:
            print("... stopping after three answers; no further work was done.")
            break

    print("\n\nExecution trace of IncrementalFD(R, 1) (Table 3)")
    print("================================================")
    print(format_trace(trace_incremental_fd(database, "Climates")))

    statistics = fd.statistics
    print("\nWork counters of the full computation:")
    for key, value in statistics.as_dict().items():
        if not isinstance(value, dict):
            print(f"  {key:28s} {value}")


if __name__ == "__main__":
    main()
