"""Ranked retrieval: the introduction's tourist scenario (Section 5).

The tourist prefers a tropical climate to a temperate one and a temperate one
to a diverse one, and cares about hotel stars.  Instead of computing all of
``FD(R)`` and sorting it, ``PriorityIncrementalFD`` delivers the answers in
ranking order, so the top-k destinations appear after polynomial work in the
input and k (Theorem 5.5).

The script shows:

* top-k retrieval with the monotonically 1-determined ``f_max``,
* the ``(τ, f)``-threshold variant of Remark 5.6,
* a custom monotonically 2-determined ranking function,
* why ``f_sum`` is excluded (Proposition 5.1 — its top-1 problem is NP-hard).

Run with::

    python examples/tourist_ranking.py
"""

from __future__ import annotations

from repro import MaxRanking, SumRanking, above_threshold, priority_incremental_fd, top_k
from repro.core.ranking import CDeterminedRanking, importance_function
from repro.relational.errors import RankingError
from repro.workloads.tourist import tourist_database, tourist_importance


def show(title, ranked_results):
    print(f"\n{title}")
    print("-" * len(title))
    for tuple_set, score in ranked_results:
        members = ", ".join(sorted(t.label for t in tuple_set))
        print(f"  score {score:5.2f}   {{{members}}}")


def main() -> None:
    database = tourist_database()
    importance = tourist_importance()

    ranking = MaxRanking(importance)
    print("Importance of each tuple (climate preference + hotel stars):")
    for label in sorted(importance):
        print(f"  imp({label}) = {importance[label]}")

    show("Top-3 destinations (f_max, monotonically 1-determined)",
         top_k(database, ranking, 3))

    show("All destinations in ranking order",
         priority_incremental_fd(database, ranking))

    show("Destinations ranking at least 3.0 (threshold variant, Remark 5.6)",
         above_threshold(database, ranking, 3.0))

    imp = importance_function(importance)
    pair_ranking = CDeterminedRanking(
        2,
        lambda subset: sum(imp(t) for t in subset),
        name="best_connected_pair_sum",
    )
    show("Top-3 under a custom monotonically 2-determined ranking",
         top_k(database, pair_ranking, 3))

    print("\nWhy not f_sum?  (Proposition 5.1)")
    print("---------------------------------")
    try:
        top_k(database, SumRanking(importance), 1)
    except RankingError as error:
        print(f"  rejected as expected: {error}")


if __name__ == "__main__":
    main()
