"""Database-system execution features (Section 7) on a synthetic workload.

Section 7 describes how ``IncrementalFD`` would be integrated into a real
query processor: block-based execution, hash indexing of the
``Complete``/``Incomplete`` lists, and initialization strategies that reuse
the answers of earlier passes.  This script exercises all three on a chain
workload and reports the machine-independent work counters the library keeps.

Run with::

    python examples/block_pipeline.py
"""

from __future__ import annotations

import time

from repro import compare_block_sizes, full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.initialization import STRATEGIES
from repro.workloads.generators import chain_database


def block_based_execution(database) -> None:
    print("Block-based execution (simulated I/O requests per block size)")
    print("==============================================================")
    reports = compare_block_sizes(database, [None, 4, 16, 64])
    print(f"{'block size':>12}  {'results':>8}  {'tuple reads':>12}  {'I/O requests':>13}")
    for report in reports:
        size = "tuple-based" if report.block_size is None else str(report.block_size)
        print(
            f"{size:>12}  {report.results:>8}  {report.tuple_reads:>12}  {report.io_requests:>13}"
        )
    print("Identical answers in every mode; larger blocks mean fewer I/O requests.\n")


def indexing(database) -> None:
    print("Hash-indexing Complete/Incomplete (Section 7)")
    print("=============================================")
    print(f"{'configuration':>15}  {'wall time (s)':>14}  {'results':>8}")
    for use_index in (False, True):
        statistics = FDStatistics()
        started = time.perf_counter()
        results = full_disjunction(database, use_index=use_index, statistics=statistics)
        elapsed = time.perf_counter() - started
        label = "indexed" if use_index else "linear scan"
        print(f"{label:>15}  {elapsed:>14.4f}  {len(results):>8}")
    print()


def initialization_strategies(database) -> None:
    print("Initialization strategies across the n passes (Section 7)")
    print("==========================================================")
    print(f"{'strategy':>20}  {'results':>8}  {'tuple reads':>12}  {'candidates':>11}")
    for strategy in STRATEGIES:
        statistics = FDStatistics()
        results = full_disjunction(database, initialization=strategy, statistics=statistics)
        print(
            f"{strategy:>20}  {len(results):>8}  {statistics.tuple_reads:>12}  "
            f"{statistics.candidates_generated:>11}"
        )
    print("All strategies produce the same full disjunction; the reuse strategies")
    print("avoid re-deriving answers already produced by earlier passes.")


def main() -> None:
    database = chain_database(
        relations=4, tuples_per_relation=18, domain_size=6, null_rate=0.1, seed=3
    )
    print(
        f"Workload: chain of {len(database)} relations, "
        f"{database.tuple_count()} tuples total\n"
    )
    block_based_execution(database)
    indexing(database)
    initialization_strategies(database)


if __name__ == "__main__":
    main()
