"""Serving: resumable sessions, shared prefixes, and streaming deltas.

This script walks the serving layer (PR 3) end to end on the paper's tourist
example:

1. open a :class:`~repro.service.session.QuerySession` and consume the full
   disjunction a few answers at a time — pausing and resuming never
   recomputes a ``GetNextResult`` step,
2. serve a second "client" the same query through the
   :class:`~repro.service.cache.PrefixCache` — the prefix is shared, the
   second computation never happens,
3. ingest streamed arrivals through the delta maintainer — each arrival
   seeds only its own singleton, and the open session observes the new
   results without restarting, and
4. multiplex several clients on one event loop through the ``async``
   execution backend, with strict round-robin fairness.

Run with::

    python examples/serving_sessions.py
"""

from __future__ import annotations

from repro import PrefixCache, StreamingFullDisjunction, open_session
from repro.exec import AsyncBackend
from repro.service.cache import database_generation
from repro.workloads.streaming import hold_back_arrivals
from repro.workloads.tourist import tourist_database


def labels(tuple_set) -> str:
    return "{" + ", ".join(sorted(t.label for t in tuple_set)) + "}"


def main() -> None:
    database = tourist_database()

    print("== 1. a pausable first-k session =========================")
    session = open_session(database, "fd", use_index=True)
    print("first 3:", [labels(ts) for ts in session.next(3)])
    print("  ... the session is paused here; nothing is being computed ...")
    print("next 3: ", [labels(ts) for ts in session.next(3)])
    print("one more:", session.next(1), "-> exhausted:", session.exhausted)
    session.close()

    print()
    print("== 2. two clients, one computation ========================")
    cache = PrefixCache()
    alice = cache.open(database, "fd", use_index=True, name="alice")
    alice.drain()
    bob = cache.open(database, "fd", use_index=True, name="bob")
    print("bob's answers (served from alice's log):",
          len(bob.drain()), "results")
    print("cache:", cache.stats())
    print("generation token:", database_generation(database))

    print()
    print("== 3. streaming ingest with delta maintenance =============")
    workload = hold_back_arrivals(tourist_database(), fraction=0.4)
    maintainer = StreamingFullDisjunction(workload.database, use_index=True)
    watcher = maintainer.session(name="watcher")
    maintainer.prime()
    print("base results:", len(watcher.drain()))
    for arrival in workload.arrivals:
        record = maintainer.ingest([arrival])
        fresh = watcher.drain()
        print(f"  +{arrival.relation_name}{arrival.values}: "
              f"{record['results_emitted']} new result(s), "
              f"{record['candidates_generated']} candidates "
              f"-> {[labels(ts) for ts in fresh]}")
    maintainer.close()

    print()
    print("== 4. fair multiplexing on one event loop =================")
    backend = AsyncBackend()
    sessions = [
        open_session(database, "fd", use_index=True, name=f"client-{i}")
        for i in range(3)
    ]
    per_client = backend.serve_first_k(sessions, 4)
    for session_obj, results in zip(sessions, per_client):
        print(f"  {session_obj.name}: {[labels(ts) for ts in results]}")
        session_obj.close()
    print("steps per session:", backend.steps)


if __name__ == "__main__":
    main()
