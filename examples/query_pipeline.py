"""Composing the full disjunction with query operators (the [16] integration).

The paper's algorithms are generators with polynomial delay, so they slot
directly into a pull-based query engine: this script builds plans that
combine ``FullDisjunctionScan`` / ``RankedFullDisjunctionScan`` with
selections, projections and limits, and shows that a ``LIMIT k`` on top of a
full disjunction only performs the work the first ``k`` answers need — even
when the full result would be large.

Run with::

    python examples/query_pipeline.py
"""

from __future__ import annotations

import time

from repro.core.ranking import MaxRanking
from repro.engine import (
    FullDisjunctionScan,
    Limit,
    Project,
    RankedFullDisjunctionScan,
    Select,
    collect,
    explain,
)
from repro.workloads.generators import star_database
from repro.workloads.tourist import tourist_database, tourist_importance


def tourist_plans() -> None:
    database = tourist_database()

    print("Plan 1: UK destinations only, two columns")
    plan = Project(
        Select(FullDisjunctionScan(database), lambda row: row["Country"] == "UK"),
        ["City", "Site"],
    )
    print(explain(plan))
    for row in plan:
        print(f"  {row.values}   (from {row.provenance})")

    print("\nPlan 2: top-2 destinations by the tourist's preference, as a plan")
    ranking = MaxRanking(tourist_importance())
    plan = Limit(RankedFullDisjunctionScan(database, ranking), 2)
    print(explain(plan))
    for row in plan:
        print(f"  score {row['_score']}: {row.provenance}")


def limits_are_cheap() -> None:
    print("\nLIMIT k over a large full disjunction does only k answers' worth of work")
    print("=========================================================================")
    database = star_database(spokes=6, tuples_per_relation=6, hub_domain=2, seed=0)
    print(f"workload: 6-spoke star, {database.tuple_count()} tuples; |FD| is in the thousands")

    for k in (1, 10, 50):
        plan = Limit(FullDisjunctionScan(database), k)
        started = time.perf_counter()
        rows = collect(plan)
        elapsed = time.perf_counter() - started
        print(f"  LIMIT {k:>3}: {len(rows):>3} rows in {elapsed:.4f} s")


def main() -> None:
    tourist_plans()
    limits_are_cheap()


if __name__ == "__main__":
    main()
