"""E16 — durability: recovery time, fsync-batched ingest overhead, follower lag.

Three claims about the PR 9 storage layer, measured on the E6-shaped star
workload:

* **Recovery beats cold recompute.**  Restarting from snapshot + WAL tail
  (including the persisted cached first-k prefix, served with *zero*
  recompute) is compared against rebuilding the same state from scratch —
  reapplying every mutation through the delta maintainer and recomputing
  the stream.  Both arms must produce byte-identical streams.
* **The WAL is cheap.**  Group-committed fsync (one ``fsync`` per
  ``DEFAULT_FSYNC_EVERY`` appends) keeps durable ingest within **10%** of
  the identical no-WAL serving run — the delta maintenance dominates, the
  log rides along.
* **Followers keep up.**  A follower tailing the primary's WAL while the
  primary ingests applies every record; the table reports the observed
  replication lag distribution.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the sweep (used by the CI smoke job).
"""

import asyncio
import os
import tempfile
import time

from repro.obs import MetricsRegistry
from repro.service.cache import database_generation
from repro.service.follower import open_follower_server
from repro.service.server import QueryServer, open_durable_server
from repro.workloads.generators import star_database

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Timed runs per arm; the best of each arm is compared (load spikes hit
#: single runs, not minima).
REPEATS = 3 if SMOKE else 5

#: Ingest batches applied per run.
BATCHES = 12 if SMOKE else 40

#: The headline bound: durable ingest best over no-WAL best, minus one.
MAX_OVERHEAD = 0.10


def _database():
    return star_database(spokes=3, tuples_per_relation=5, hub_domain=2, seed=4)


def _ingest_request(index: int) -> dict:
    relation = f"S{index % 3 + 1}"
    return {
        "op": "ingest",
        "tuples": [[relation, [f"h{index % 2 + 1}", f"e16_{index}"]]],
    }


async def _apply_batches(state: QueryServer, count: int) -> None:
    for index in range(count):
        response = await state.handle_request(_ingest_request(index))
        assert response.get("ok"), response


async def _fd_stream(state: QueryServer):
    opened = await state.handle_request({"op": "open", "engine": "fd"})
    assert opened.get("ok"), opened
    pulled = await state.handle_request(
        {"op": "next", "session": opened["session"], "k": 1_000_000}
    )
    await state.handle_request({"op": "close", "session": opened["session"]})
    return opened, pulled["results"]


# ---------------------------------------------------------------------- #
# arm 1: recovery vs cold recompute
# ---------------------------------------------------------------------- #
def _prepare_crashed_dir(data_dir: str) -> list:
    """A data directory left behind by a 'crashed' primary; returns its stream."""
    state = open_durable_server(
        _database(), data_dir, snapshot_every=16, registry=MetricsRegistry()
    )
    asyncio.run(_apply_batches(state, BATCHES))
    _, stream = asyncio.run(_fd_stream(state))  # materialize the cached prefix
    snapped = asyncio.run(state.handle_request({"op": "snapshot"}))
    assert snapped["ok"], snapped
    state.store.close()  # crash: WAL sealed by the OS, no graceful shutdown
    return stream


def _timed_recovery(data_dir: str):
    started = time.perf_counter()
    state = open_durable_server(None, data_dir, registry=MetricsRegistry())
    opened, stream = asyncio.run(_fd_stream(state))
    elapsed = time.perf_counter() - started
    state.store.close()
    return elapsed, opened, stream, state


def _timed_cold_recompute():
    started = time.perf_counter()
    state = QueryServer(_database(), registry=MetricsRegistry())
    asyncio.run(_apply_batches(state, BATCHES))
    opened, stream = asyncio.run(_fd_stream(state))
    return time.perf_counter() - started, opened, stream, state


# ---------------------------------------------------------------------- #
# arm 2: fsync-batched WAL overhead on the ingest path
# ---------------------------------------------------------------------- #
def _timed_ingest(durable: bool, data_dir=None):
    if durable:
        state = open_durable_server(
            _database(), data_dir, snapshot_every=None, registry=MetricsRegistry()
        )
    else:
        state = QueryServer(_database(), registry=MetricsRegistry())
    started = time.perf_counter()
    asyncio.run(_apply_batches(state, BATCHES))
    elapsed = time.perf_counter() - started
    if durable:
        state.store.close()
    return elapsed, state


def _best_ingest_runs(workdir: str):
    """Interleave the two arms so drift hits both equally; keep the minima."""
    _timed_ingest(False)  # warm the catalog build and code paths
    best = {True: None, False: None}
    states = {}
    for round_index in range(REPEATS):
        for durable in (True, False):
            data_dir = (
                os.path.join(workdir, f"ingest-{round_index}") if durable else None
            )
            elapsed, state = _timed_ingest(durable, data_dir)
            if best[durable] is None or elapsed < best[durable]:
                best[durable] = elapsed
            states[durable] = state
    return best, states


# ---------------------------------------------------------------------- #
# arm 3: follower lag while the primary ingests
# ---------------------------------------------------------------------- #
def _follower_lag(workdir: str):
    data_dir = os.path.join(workdir, "follower")
    primary = open_durable_server(
        _database(), data_dir, snapshot_every=None, fsync_every=1,
        registry=MetricsRegistry(),
    )
    follower, tailer = open_follower_server(data_dir, registry=MetricsRegistry())

    lags = []

    async def run() -> None:
        for index in range(BATCHES):
            response = await primary.handle_request(_ingest_request(index))
            assert response.get("ok"), response
            applied = tailer.poll_once()
            assert applied >= 1
            lags.append(tailer.lag_seconds)

    asyncio.run(run())
    assert tailer.records_applied == BATCHES
    assert list(database_generation(follower.database)) == list(
        database_generation(primary.database)
    )
    primary.store.close()
    return lags


def test_e16_durability(benchmark, report_table):
    with tempfile.TemporaryDirectory(prefix="bench-e16-") as workdir:
        # --- recovery vs cold recompute ------------------------------- #
        crash_dir = os.path.join(workdir, "crashed")
        expected_stream = _prepare_crashed_dir(crash_dir)
        recovery_s, opened, recovered_stream, recovered = _timed_recovery(crash_dir)
        cold_s, _, cold_stream, _ = _timed_cold_recompute()
        assert recovered_stream == expected_stream == cold_stream
        assert opened["cached"] is True, "recovered prefix must serve from cache"
        assert recovered.store.recovery_info["recovered"] is True
        report_table(
            f"E16: restart to first-k served, {BATCHES} mutations "
            "(snapshot+WAL replay vs cold recompute)",
            ["arm", "time (ms)", "stream", "cached open"],
            [
                [
                    "recovery (snapshot+WAL)",
                    f"{recovery_s * 1000:.2f}",
                    f"{len(recovered_stream)} results",
                    "yes (zero recompute)",
                ],
                [
                    "cold recompute",
                    f"{cold_s * 1000:.2f}",
                    f"{len(cold_stream)} results",
                    "no",
                ],
                ["speedup", f"{cold_s / recovery_s:.2f}x", "", ""],
            ],
        )

        # --- fsync-batched ingest overhead ---------------------------- #
        best, states = _best_ingest_runs(workdir)
        assert (
            states[True].maintainer.arrivals_applied
            == states[False].maintainer.arrivals_applied
        )
        overhead = best[True] / best[False] - 1.0
        assert overhead <= MAX_OVERHEAD, (
            f"WAL ingest overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
            f"(durable {best[True]:.4f}s vs no-WAL {best[False]:.4f}s)"
        )
        wal_stats = states[True].store.stats()["wal"]
        report_table(
            f"E16b: ingest path, WAL (fsync every {wal_stats['fsync_every']}) "
            f"vs no WAL (best of {REPEATS}, {BATCHES} batches)",
            ["arm", "time (ms)", "WAL records", "fsyncs", "overhead"],
            [
                [
                    "no WAL",
                    f"{best[False] * 1000:.2f}",
                    0,
                    0,
                    "",
                ],
                [
                    "WAL, group commit",
                    f"{best[True] * 1000:.2f}",
                    wal_stats["records_appended"],
                    wal_stats["fsyncs"],
                    f"{overhead:+.1%}",
                ],
            ],
        )

        # --- follower lag under ingest -------------------------------- #
        lags = _follower_lag(workdir)
        lags_ms = sorted(lag * 1000 for lag in lags)
        report_table(
            f"E16c: follower replication lag while the primary ingests "
            f"{BATCHES} batches (fsync every append)",
            ["records applied", "mean lag (ms)", "p50 (ms)", "max (ms)"],
            [
                [
                    len(lags),
                    f"{sum(lags_ms) / len(lags_ms):.2f}",
                    f"{lags_ms[len(lags_ms) // 2]:.2f}",
                    f"{lags_ms[-1]:.2f}",
                ]
            ],
        )

        benchmark(lambda: _timed_recovery(crash_dir))
