"""E10 — the serving subsystem: first-k latency under concurrent clients.

Three questions about the query-serving layer (:mod:`repro.service`):

1. **Concurrency** — how does the latency until *every* client holds its
   first ``k`` answers grow with the client count, when the clients share
   one event loop through the ``async`` execution backend?
2. **Prefix caching** — how much of a cold run does the LRU prefix cache
   save a second wave of identical queries?  (The acceptance bar: warm
   first-k latency strictly below cold-run latency.)
3. **Streaming delta maintenance** — per-arrival work of the delta
   maintainer (each arrival seeds only its own singleton) against
   ``replay_stream``'s full recompute, by the machine-independent
   ``candidates_generated`` counter.  (The bar: sub-linear — strictly less
   work, here by an order of magnitude.)

Set ``REPRO_BENCH_SMOKE=1`` to restrict client counts and workload size
(used by the CI smoke job).
"""

import asyncio
import os
import time

from repro.core.full_disjunction import full_disjunction
from repro.exec import AsyncBackend
from repro.service.cache import PrefixCache
from repro.service.delta import DeltaSummary, incremental_replay_stream
from repro.workloads.generators import star_database
from repro.workloads.streaming import StreamSummary, replay_stream, streaming_star_workload

K = 10


def _first_k_latency(database, clients: int, cache: PrefixCache, k: int = K) -> float:
    """Seconds until every one of ``clients`` concurrent sessions holds ``k`` answers."""
    backend = AsyncBackend()

    async def one_wave():
        sessions = [
            cache.open(database, "fd", use_index=True, name=f"c{i}")
            for i in range(clients)
        ]
        try:
            await asyncio.gather(*(backend.drive(s, k) for s in sessions))
        finally:
            for session in sessions:
                session.close()

    started = time.perf_counter()
    asyncio.run(one_wave())
    return time.perf_counter() - started


def test_e10a_first_k_latency_cold_vs_cached(benchmark, report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    spokes, per_relation = (4, 5) if smoke else (5, 6)
    client_counts = (1, 4) if smoke else (1, 2, 4, 8)
    database = star_database(
        spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=0
    )
    database.catalog()  # shared build; not charged to any wave

    rows = []
    for clients in client_counts:
        # Cold: a fresh cache — the first wave pays one full computation
        # (shared across its own clients).  Warm: the same cache again — the
        # prefix is materialized, so every client replays from memory.
        cache = PrefixCache()
        cold = min(
            _first_k_latency(database, clients, PrefixCache()),
            _first_k_latency(database, clients, cache),
        )
        warm = _first_k_latency(database, clients, cache)
        # The machine-independent version of the caching claim, asserted
        # always: across both waves exactly one computation ran — the warm
        # wave recomputed nothing.
        assert cache.stats()["misses"] == 1, cache.stats()
        assert cache.stats()["hits"] >= clients, cache.stats()
        if not smoke:
            # The wall-clock claim (cached below cold) is asserted outside
            # the CI smoke job only: at sub-10ms scale a shared runner's
            # scheduler hiccup could fail the build without a code defect.
            assert warm < cold, (
                f"cached first-{K} latency {warm:.4f}s not below cold "
                f"{cold:.4f}s at {clients} clients"
            )
        rows.append(
            [
                clients,
                K,
                f"{cold:.4f}",
                f"{warm:.4f}",
                f"{cold / warm:.1f}x",
                cache.stats()["hits"],
            ]
        )

    report_table(
        f"E10a: latency until every client holds its first {K} answers "
        f"({spokes}-spoke star, shared event loop)",
        ["clients", "k", "cold (s)", "cached (s)", "speedup", "cache hits"],
        rows,
    )

    benchmark(lambda: _first_k_latency(database, 2, PrefixCache(), k=5))


def test_e10b_streaming_delta_vs_full_recompute(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    arrivals = 6 if smoke else 9
    rows = []
    for batch_size in (1, 3):
        replay_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )
        delta_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )

        replay_summary = StreamSummary()
        _, replay_seconds = _timed_drain(
            replay_stream(
                replay_workload.database,
                replay_workload.arrivals,
                batch_size=batch_size,
                use_index=True,
                summary=replay_summary,
            )
        )
        delta_summary = DeltaSummary()
        _, delta_seconds = _timed_drain(
            incremental_replay_stream(
                delta_workload.database,
                delta_workload.arrivals,
                batch_size=batch_size,
                use_index=True,
                summary=delta_summary,
            )
        )

        assert {_labels(ts) for ts in replay_summary.results} == {
            _labels(ts) for ts in delta_summary.results
        }
        replay_work = replay_summary.statistics.candidates_generated
        delta_work = delta_summary.statistics.candidates_generated
        # The acceptance bar: per-arrival work proportional to the delta,
        # not to the full (re)computation.
        assert delta_work < replay_work, (
            f"delta maintenance generated {delta_work} candidates, "
            f"full recompute {replay_work}"
        )
        per_batch = [batch["candidates_generated"] for batch in delta_summary.per_batch]
        rows.append(
            [
                batch_size,
                len(replay_summary.results),
                replay_work,
                delta_work,
                f"{replay_work / max(delta_work, 1):.1f}x",
                f"{replay_seconds:.4f}",
                f"{delta_seconds:.4f}",
                max(per_batch) if per_batch else 0,
            ]
        )

    report_table(
        f"E10b: streaming ingest, {arrivals} arrivals — delta maintenance vs "
        "full recompute (candidates generated)",
        ["batch", "|results|", "recompute cand.", "delta cand.", "work ratio",
         "recompute (s)", "delta (s)", "max cand./batch"],
        rows,
    )


def _labels(tuple_set):
    return frozenset(t.label for t in tuple_set)


def _timed_drain(events):
    started = time.perf_counter()
    drained = list(events)
    return drained, time.perf_counter() - started
