"""E4 — approximate full disjunctions on dirty data (Theorem 6.6).

Three unreliable sources describe the same entities with spelling noise.  The
experiment sweeps the threshold τ for ``A_min`` with an edit-distance
similarity and reports, for each τ, the number of answers, how many answers
link records from two or more sources, the largest answer and the runtime.
The expected shape: τ = 1 behaves like the exact full disjunction (few links,
typos keep records apart); lowering τ monotonically increases linking, at a
moderate runtime cost — and the algorithm stays incremental throughout.
"""

import time

from repro.bench.reporting import probe_counters
from repro.core.approx import approx_full_disjunction
from repro.core.approx_join import EditDistanceSimilarity, MinJoin
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.workloads.dirty import dirty_sources_database

THRESHOLDS = (1.0, 0.9, 0.8, 0.7, 0.6)


def test_e4_threshold_sweep(benchmark, report_table):
    # Fully reliable sources: the τ sweep then isolates the similarity effect
    # (with τ = 1 the result coincides with the exact full disjunction).
    # Source reliabilities below 1 additionally prune whole sources once τ
    # exceeds them — that effect is exercised by the unit tests instead.
    database = dirty_sources_database(
        entities=20,
        sources=3,
        coverage=0.9,
        typo_rate=0.35,
        null_rate=0.05,
        seed=11,
        source_reliability=[1.0, 1.0, 1.0],
    )
    amin = MinJoin(EditDistanceSimilarity())

    exact = full_disjunction(database)
    exact_linked = sum(1 for ts in exact if len(ts) > 1)

    rows = [
        [
            "exact FD",
            len(exact),
            exact_linked,
            max(len(ts) for ts in exact),
            "-",
            "-",
            "-",
        ]
    ]
    previous_linked = None
    for threshold in THRESHOLDS:
        statistics = FDStatistics()
        started = time.perf_counter()
        results = approx_full_disjunction(
            database, amin, threshold, use_index=True, statistics=statistics
        )
        elapsed = time.perf_counter() - started
        linked = sum(1 for ts in results if len(ts) > 1)
        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                f"A_min, τ = {threshold:.1f}",
                len(results),
                linked,
                max(len(ts) for ts in results),
                f"{elapsed:.3f}",
                bucket_probes,
                full_scans,
            ]
        )
        if previous_linked is not None:
            assert linked >= previous_linked  # lowering τ links at least as much
        previous_linked = linked
    assert previous_linked >= exact_linked

    report_table(
        "E4: (A_min, τ)-approximate full disjunction of 3 dirty sources "
        f"({database.tuple_count()} records)",
        ["configuration", "answers", "answers linking ≥ 2 sources",
         "largest answer", "runtime (s)", "bucket probes", "full scans"],
        rows,
    )

    benchmark(lambda: approx_full_disjunction(database, amin, 0.8, use_index=True))
