"""E1 — total runtime: IncrementalFD driver vs. the batch baseline vs. the oracle.

Corollary 4.9 bounds the driver by ``O(s·n³·f²)``; the paper credits [3] with
``O(s²·n⁵·f²)`` and highlights that IncrementalFD also wins in practice.  The
experiment sweeps a chain workload of growing size and reports the total wall
time of the incremental driver (with and without the Section 7 index), of the
batch stand-in baseline and — on the smallest instance — of the brute-force
oracle.  The expected shape: the incremental driver is consistently the
fastest complete method and the gap grows with the input.
"""

import os
import time

from repro.baselines.batch import batch_full_disjunction
from repro.baselines.naive import naive_full_disjunction
from repro.bench.reporting import BACKEND_SWEEP_HEADERS, backend_sweep_rows
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.workloads.generators import chain_database

SIZES = (6, 12, 18, 24)


def _timed(function):
    started = time.perf_counter()
    result = function()
    return len(result), time.perf_counter() - started


def _sets_scanned(statistics: FDStatistics) -> int:
    """Total Complete+Incomplete sets subjected to a subsumption/merge test."""
    return statistics.extras.get("complete_sets_scanned", 0) + statistics.extras.get(
        "incomplete_sets_scanned", 0
    )


def test_e1_total_runtime_vs_baselines(benchmark, report_table):
    rows = []
    for tuples_per_relation in SIZES:
        database = chain_database(
            relations=4,
            tuples_per_relation=tuples_per_relation,
            domain_size=5,
            null_rate=0.1,
            seed=1,
        )
        plain_statistics = FDStatistics()
        fd_size, incremental_seconds = _timed(
            lambda: full_disjunction(database, statistics=plain_statistics)
        )
        indexed_statistics = FDStatistics()
        _, indexed_seconds = _timed(
            lambda: full_disjunction(
                database, use_index=True, statistics=indexed_statistics
            )
        )
        _, best_seconds = _timed(
            lambda: full_disjunction(
                database, use_index=True, initialization="reduced-previous"
            )
        )
        batch_size, batch_seconds = _timed(lambda: batch_full_disjunction(database))
        assert batch_size == fd_size
        if tuples_per_relation == SIZES[0]:
            oracle_size, oracle_seconds = _timed(lambda: naive_full_disjunction(database))
            assert oracle_size == fd_size
            oracle_cell = f"{oracle_seconds:.3f}"
        else:
            oracle_cell = "-"
        plain_scanned = _sets_scanned(plain_statistics)
        indexed_scanned = _sets_scanned(indexed_statistics)
        rows.append(
            [
                tuples_per_relation,
                database.total_size(),
                fd_size,
                f"{incremental_seconds:.3f}",
                f"{indexed_seconds:.3f}",
                f"{best_seconds:.3f}",
                f"{batch_seconds:.3f}",
                oracle_cell,
                f"{batch_seconds / best_seconds:.2f}x",
                plain_scanned,
                indexed_scanned,
                f"{plain_scanned / max(indexed_scanned, 1):.1f}x",
            ]
        )

    report_table(
        "E1: total runtime on chain workloads (4 relations, growing size)",
        [
            "tuples/rel",
            "input size s",
            "|FD|",
            "IncrementalFD (s)",
            "IncrementalFD+index (s)",
            "IncrementalFD+index+reuse (s)",
            "Batch baseline (s)",
            "Naive oracle (s)",
            "batch/best incremental",
            "sets scanned (lists)",
            "sets scanned (indexed)",
            "scan drop",
        ],
        rows,
    )

    # The timed benchmark sample: the complete driver on the mid-size instance.
    database = chain_database(
        relations=4, tuples_per_relation=12, domain_size=5, null_rate=0.1, seed=1
    )
    benchmark(lambda: full_disjunction(database, use_index=True))


def test_e1b_execution_backends(report_table):
    """The --backend axis: identical result sets, different schedules."""
    sizes = SIZES[:1] if os.environ.get("REPRO_BENCH_SMOKE") else SIZES[:3]
    rows = []
    for tuples_per_relation in sizes:
        database = chain_database(
            relations=4,
            tuples_per_relation=tuples_per_relation,
            domain_size=5,
            null_rate=0.1,
            seed=1,
        )
        rows.extend(backend_sweep_rows(database, f"chain {tuples_per_relation}/rel"))

    report_table(
        "E1b: execution backends on chain workloads (4 relations, indexed store)",
        list(BACKEND_SWEEP_HEADERS),
        rows,
    )
