"""E14 — bucket-grained work stealing and the anchor-bucket-sharded server.

Two questions about the scale-out layer:

1. **Pass latency** — on a skewed fixture (one hot relation dominating the
   work), how does the bucket-grained schedule of
   :class:`~repro.exec.sharded.ShardedBackend` compare with the old
   pass-grained fan-out, at 1/2/4 workers?  The acceptance bar: bucket
   strictly faster than pass at every worker count ≥ 2, with byte-identical
   result streams *and* ``sets_scanned`` statistics across worker counts.
   (Bucket-splitting also wins on one core: restricting each range to its
   anchor bucket keeps the per-range ``Complete`` store — and therefore
   ``sets_scanned`` per pop — small, so the skewed pass stops paying
   quadratic scan costs on its own bulk.)
2. **Serving** — sessions/sec and p50/p99 ``next`` latency through the
   sharded router at 1 and 2 shard processes, plus the backpressure
   contract: at ``max_sessions_per_shard=1`` the second identical ``open``
   must be refused ``busy`` with a retry hint, never queued unboundedly.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workloads (used by the CI smoke
job).  Tables land in ``benchmarks/artifacts/BENCH_E14.json``.
"""

import asyncio
import os
import time

from repro.core.incremental import FDStatistics
from repro.exec import ShardedBackend, shutdown_pools
from repro.service.server import client_call
from repro.service.sharding import start_sharded_server
from repro.workloads.generators import skewed_chain_database, star_database

WORKER_COUNTS = (1, 2, 4)


def _skewed_fixture(smoke):
    if smoke:
        return skewed_chain_database(
            relations=4, tuples_per_relation=6, hot_relation=2, hot_factor=6,
            domain_size=4, null_rate=0.1, seed=0,
        )
    return skewed_chain_database(
        relations=4, tuples_per_relation=10, hot_relation=2, hot_factor=8,
        domain_size=4, null_rate=0.1, seed=0,
    )


def _keyed_stream(results):
    return [
        tuple(sorted((t.relation_name, t.label) for t in ts)) for ts in results
    ]


def _timed_run(backend, database, repeats):
    """Best-of-``repeats`` wall time; returns (seconds, stream, stats dict)."""
    best = None
    stream = stats = None
    for _ in range(repeats):
        statistics = FDStatistics()
        started = time.perf_counter()
        results = list(
            backend.run_singleton_passes(
                database, use_index=True, statistics=statistics
            )
        )
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        stream = _keyed_stream(results)
        stats = statistics.as_dict()
    return best, stream, stats


def test_e14a_bucket_vs_pass_latency(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    repeats = 2 if smoke else 3
    database = _skewed_fixture(smoke)
    database.catalog()
    sizes = "/".join(str(len(relation)) for relation in database.relations)

    rows = []
    bucket_streams, bucket_stats = {}, {}
    try:
        for workers in WORKER_COUNTS:
            pass_s, pass_stream, _ = _timed_run(
                ShardedBackend(max_workers=workers, granularity="pass"),
                database, repeats,
            )
            bucket_s, bucket_stream, stats = _timed_run(
                ShardedBackend(max_workers=workers, granularity="bucket"),
                database, repeats,
            )
            bucket_streams[workers] = bucket_stream
            bucket_stats[workers] = stats
            # Same members either way; bucket just reorders within a pass.
            assert set(bucket_stream) == set(pass_stream)
            rows.append(
                [
                    workers,
                    len(bucket_stream),
                    f"{pass_s:.3f}",
                    f"{bucket_s:.3f}",
                    f"{pass_s / bucket_s:.2f}x",
                ]
            )
            # The tentpole's acceptance bar: bucket-grained strictly beats
            # pass-grained on the skewed fixture at every count ≥ 2.
            if workers >= 2:
                assert bucket_s < pass_s, (
                    f"bucket ({bucket_s:.3f}s) not faster than pass "
                    f"({pass_s:.3f}s) at {workers} workers"
                )
    finally:
        shutdown_pools()

    # Byte-identical streams and statistics across every worker count —
    # scheduling must never leak into results or sets_scanned.
    reference = bucket_streams[WORKER_COUNTS[0]]
    reference_stats = bucket_stats[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert bucket_streams[workers] == reference
        assert bucket_stats[workers] == reference_stats
    scanned = {
        key: value
        for key, value in reference_stats.items()
        if key.endswith("sets_scanned")
    }
    assert scanned, "sets_scanned extras missing from the merged statistics"

    report_table(
        f"E14a: bucket- vs pass-grained pass latency (skewed chain {sizes}, "
        f"best of {repeats}; streams+stats identical across worker counts; "
        f"sets_scanned={scanned})",
        ["workers", "|FD|", "pass-grained (s)", "bucket-grained (s)", "speedup"],
        rows,
    )


async def _drive_sessions(port, clients, chunk):
    """``clients`` concurrent open→drain→close cycles; returns latencies."""

    async def one_client(index):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        next_latencies = []
        try:
            opened = await client_call(
                reader, writer, {"op": "open", "engine": "fd"}
            )
            assert opened["ok"], opened
            session = opened["session"]
            results = []
            while True:
                started = time.perf_counter()
                reply = await client_call(
                    reader, writer,
                    {"op": "next", "session": session, "k": chunk},
                )
                next_latencies.append(time.perf_counter() - started)
                assert reply["ok"], reply
                results.extend(reply["results"])
                if reply["exhausted"]:
                    break
            await client_call(reader, writer, {"op": "close", "session": session})
        finally:
            writer.close()
            await writer.wait_closed()
        return results, next_latencies

    outcomes = await asyncio.gather(*(one_client(i) for i in range(clients)))
    streams = [stream for stream, _ in outcomes]
    assert all(stream == streams[0] for stream in streams[1:])
    return [latency for _, latencies in outcomes for latency in latencies]


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_e14b_sharded_serving(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    clients = 4 if smoke else 8
    database = star_database(
        spokes=3, tuples_per_relation=4 if smoke else 6, hub_domain=2, seed=1
    )

    async def serve_round(shards):
        server, router, port = await start_sharded_server(database, shards=shards)
        try:
            started = time.perf_counter()
            latencies = await _drive_sessions(port, clients, chunk=3)
            elapsed = time.perf_counter() - started
        finally:
            server.close()
            await server.wait_closed()
            await router.shutdown()
        return elapsed, latencies

    async def busy_round():
        server, router, port = await start_sharded_server(
            database, shards=2, max_sessions_per_shard=1
        )
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                first = await client_call(
                    reader, writer, {"op": "open", "engine": "fd"}
                )
                assert first["ok"]
                refused = await client_call(
                    reader, writer, {"op": "open", "engine": "fd"}
                )
                stats = await client_call(reader, writer, {"op": "stats"})
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            server.close()
            await server.wait_closed()
            await router.shutdown()
        return refused, stats

    rows = []
    for shards in (1, 2):
        elapsed, latencies = asyncio.run(serve_round(shards))
        rows.append(
            [
                shards,
                clients,
                f"{clients / elapsed:.1f}",
                f"{_percentile(latencies, 0.50) * 1e3:.2f}",
                f"{_percentile(latencies, 0.99) * 1e3:.2f}",
            ]
        )
    report_table(
        "E14b: sessions/sec and next-latency through the sharded router "
        f"({clients} concurrent clients, identical streams asserted)",
        ["shards", "clients", "sessions/s", "next p50 (ms)", "next p99 (ms)"],
        rows,
    )

    # The backpressure contract over the wire: past the per-shard session
    # limit the router answers busy-with-retry-hint, and counts it.
    refused, stats = asyncio.run(busy_round())
    assert refused.get("busy") is True
    assert refused["retry_after_ms"] > 0
    assert stats["busy_rejections"] >= 1
    report_table(
        "E14c: admission control at max_sessions_per_shard=1",
        ["second open", "retry_after_ms", "busy_rejections"],
        [["busy", refused["retry_after_ms"], stats["busy_rejections"]]],
    )
