"""E11 — ranked delta maintenance: per-arrival work and first-k latency.

Two questions about ranked streaming (:mod:`repro.service.delta` with a
``ranking``):

1. **Delta vs recompute work** — per-arrival cost of maintaining the *ranked*
   full disjunction by seeding the live priority queues with only the
   arrival's size-≤c subsets, against re-running the whole ranked engine per
   batch, by the machine-independent ``candidates_generated`` counter.  The
   acceptance bar, asserted always: the delta generates strictly fewer
   candidates while emitting the *identical* ranked event stream (same sets,
   same scores, same order).
2. **Ranked first-k latency** — how quickly concurrent clients hold their
   top-k answers through the serving layer's prefix cache: the first ranked
   query pays one engine run (queue build + k extractions), identical
   queries replay the shared log from memory.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workloads (used by the CI smoke
job).
"""

import asyncio
import os
import time

from repro.core.ranking import MaxRanking
from repro.exec import AsyncBackend
from repro.service.cache import PrefixCache
from repro.service.delta import DeltaSummary, incremental_replay_stream
from repro.workloads.generators import star_database
from repro.workloads.streaming import (
    ResultEvent,
    StreamSummary,
    replay_stream,
    streaming_star_workload,
)

K = 5


def _ranking():
    """Label-derived importance with deliberate ties (modulus 5)."""
    return MaxRanking(lambda t: float(sum(ord(ch) for ch in t.label) % 5))


def _keys(tuple_set):
    return frozenset((t.relation_name, t.label) for t in tuple_set)


def _ranked_events(events):
    return [
        (event.after_arrivals, _keys(event.tuple_set), event.score)
        for event in events
        if isinstance(event, ResultEvent)
    ]


def _timed_drain(events):
    started = time.perf_counter()
    drained = list(events)
    return drained, time.perf_counter() - started


def test_e11a_ranked_delta_vs_full_ranked_recompute(benchmark, report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    arrivals = 6 if smoke else 9
    rows = []
    for batch_size in (1, 3):
        replay_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )
        delta_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )

        replay_summary = StreamSummary()
        replay_events, replay_seconds = _timed_drain(
            replay_stream(
                replay_workload.database,
                replay_workload.arrivals,
                batch_size=batch_size,
                use_index=True,
                summary=replay_summary,
                ranking=_ranking(),
            )
        )
        delta_summary = DeltaSummary()
        delta_events, delta_seconds = _timed_drain(
            incremental_replay_stream(
                delta_workload.database,
                delta_workload.arrivals,
                batch_size=batch_size,
                use_index=True,
                summary=delta_summary,
                ranking=_ranking(),
            )
        )

        # The acceptance criterion: the identical ranked event stream —
        # same result sets, same scores, same order, ties included.
        assert _ranked_events(delta_events) == _ranked_events(replay_events)
        replay_work = replay_summary.statistics.candidates_generated
        delta_work = delta_summary.statistics.candidates_generated
        # ... from strictly less work.
        assert delta_work < replay_work, (
            f"ranked delta generated {delta_work} candidates, "
            f"full ranked recompute {replay_work}"
        )
        per_batch = [batch["candidates_generated"] for batch in delta_summary.per_batch]
        rows.append(
            [
                batch_size,
                len(delta_summary.results),
                replay_work,
                delta_work,
                f"{replay_work / max(delta_work, 1):.1f}x",
                f"{replay_seconds:.4f}",
                f"{delta_seconds:.4f}",
                max(per_batch) if per_batch else 0,
            ]
        )

    report_table(
        f"E11a: ranked streaming ingest, {arrivals} arrivals — delta-maintained "
        "priority queues vs full ranked recompute (candidates generated)",
        ["batch", "|results|", "recompute cand.", "delta cand.", "work ratio",
         "recompute (s)", "delta (s)", "max cand./batch"],
        rows,
    )

    def once():
        workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=3, hub_domain=2, seed=2
        )
        list(
            incremental_replay_stream(
                workload.database, workload.arrivals,
                use_index=True, ranking=_ranking(),
            )
        )

    benchmark(once)


def _ranked_first_k_latency(database, clients: int, cache: PrefixCache, k: int) -> float:
    """Seconds until every one of ``clients`` ranked sessions holds ``k`` answers."""
    backend = AsyncBackend()
    ranking = _ranking()

    async def one_wave():
        sessions = [
            cache.open(
                database, "priority", ranking=ranking, use_index=True,
                cache_tag="e11-ranking", name=f"c{i}",
            )
            for i in range(clients)
        ]
        try:
            await asyncio.gather(*(backend.drive(s, k) for s in sessions))
        finally:
            for session in sessions:
                session.close()

    started = time.perf_counter()
    asyncio.run(one_wave())
    return time.perf_counter() - started


def test_e11b_ranked_first_k_latency_cold_vs_cached(report_table):
    """Latency until every client holds its top-k, cold vs shared prefix."""
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    spokes, per_relation = (4, 5) if smoke else (5, 6)
    client_counts = (1, 4) if smoke else (1, 2, 4, 8)
    database = star_database(
        spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=0
    )
    database.catalog()  # shared build; not charged to any wave

    rows = []
    for clients in client_counts:
        cache = PrefixCache()
        cold = min(
            _ranked_first_k_latency(database, clients, PrefixCache(), K),
            _ranked_first_k_latency(database, clients, cache, K),
        )
        warm = _ranked_first_k_latency(database, clients, cache, K)
        # The machine-independent caching claim, asserted always: across
        # both waves exactly one ranked engine run (queue build included)
        # happened — the warm wave recomputed nothing.
        assert cache.stats()["misses"] == 1, cache.stats()
        assert cache.stats()["hits"] >= clients, cache.stats()
        if not smoke:
            # Wall-clock assertion outside CI smoke only (shared runners).
            assert warm < cold, (
                f"cached ranked first-{K} latency {warm:.4f}s not below cold "
                f"{cold:.4f}s at {clients} clients"
            )
        rows.append(
            [
                clients,
                K,
                f"{cold:.4f}",
                f"{warm:.4f}",
                f"{cold / warm:.1f}x",
                cache.stats()["hits"],
            ]
        )

    report_table(
        f"E11b: latency until every client holds its top-{K} ranked answers "
        f"({spokes}-spoke star, shared event loop, shared ranked log)",
        ["clients", "k", "cold (s)", "cached (s)", "speedup", "cache hits"],
        rows,
    )
