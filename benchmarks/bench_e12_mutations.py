"""E12 — mutable streams: deletions/updates under delta maintenance + revalidation.

Two questions about the non-monotone serving path:

1. **Delta maintenance under mutations** — when the stream interleaves
   tombstone deletions and in-place updates with arrivals, how much work
   (machine-independent ``candidates_generated``) does the retract-and-
   re-derive maintainer save against a full per-batch recompute?  (The
   acceptance bar: strictly less work, same net result stream.)
2. **Epoch revalidation** — after a deletion that does not touch a cached
   first-k prefix, how fast is a revalidated cached open against a cold
   one?  (The bar: the revalidated open recomputes nothing — zero extra
   cache misses — and is faster on the wall clock.)

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workloads (used by the CI smoke
job).  Tables land in ``benchmarks/artifacts/BENCH_E12.json``.
"""

import os
import time

from repro.service.cache import PrefixCache
from repro.service.delta import DeltaSummary, incremental_replay_stream
from repro.workloads.generators import star_database
from repro.workloads.streaming import (
    StreamSummary,
    inject_mutations,
    replay_stream,
    streaming_star_workload,
)

K = 6


def _key(tuple_set):
    return frozenset((t.relation_name, t.label, t.values) for t in tuple_set)


def _timed_drain(events):
    started = time.perf_counter()
    drained = list(events)
    return drained, time.perf_counter() - started


def test_e12a_delta_with_mutations_vs_full_recompute(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    arrivals = 6 if smoke else 9
    mutations = 3 if smoke else 5
    rows = []
    for batch_size in (1, 3):
        replay_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )
        delta_workload = streaming_star_workload(
            spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
        )
        replay_ops = inject_mutations(replay_workload, mutations, seed=5)
        delta_ops = inject_mutations(delta_workload, mutations, seed=5)

        replay_summary = StreamSummary()
        _, replay_seconds = _timed_drain(
            replay_stream(
                replay_workload.database,
                replay_ops,
                batch_size=batch_size,
                use_index=True,
                summary=replay_summary,
            )
        )
        delta_summary = DeltaSummary()
        _, delta_seconds = _timed_drain(
            incremental_replay_stream(
                delta_workload.database,
                delta_ops,
                batch_size=batch_size,
                use_index=True,
                summary=delta_summary,
            )
        )

        # The tentpole invariant: identical net result streams.
        assert {_key(ts) for ts in replay_summary.results} == {
            _key(ts) for ts in delta_summary.results
        }
        retracted = delta_summary.retractions()
        assert retracted > 0, "the schedule should retract at least one result"
        replay_work = replay_summary.statistics.candidates_generated
        delta_work = delta_summary.statistics.candidates_generated
        # The acceptance bar: delta-with-deletions work below per-batch
        # recompute work.
        assert delta_work < replay_work, (
            f"mutated delta maintenance generated {delta_work} candidates, "
            f"full recompute {replay_work}"
        )
        rows.append(
            [
                batch_size,
                f"{arrivals}+{mutations}",
                len(delta_summary.results),
                retracted,
                replay_work,
                delta_work,
                f"{replay_work / max(delta_work, 1):.1f}x",
                f"{replay_seconds:.4f}",
                f"{delta_seconds:.4f}",
            ]
        )

    report_table(
        f"E12a: {arrivals} arrivals + {mutations} mutations (deletions/updates) "
        "— delta maintenance vs full recompute",
        ["batch", "ops", "|net results|", "retracted", "recompute cand.",
         "delta cand.", "work ratio", "recompute (s)", "delta (s)"],
        rows,
    )


def test_e12b_revalidated_cached_first_k_vs_cold(benchmark, report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    spokes, per_relation = (4, 5) if smoke else (5, 6)
    database = star_database(
        spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=0
    )
    database.catalog()

    def cold_first_k():
        cache = PrefixCache()
        session = cache.open(database, "fd", use_index=True)
        results = session.next(K)
        session.close()
        return cache, results

    rows = []
    deletions = 2 if smoke else 3
    cache, prefix = cold_first_k()
    # Wall-clock floor for the cold path: best of two fresh computations.
    _, cold_seconds = min(
        (_timed(cold_first_k), _timed(cold_first_k)), key=lambda pair: pair[1]
    )
    covered = set()
    for tuple_set in prefix:
        covered.update(tuple_set.tuples)
    for round_index in range(deletions):
        victim = next(t for t in database.tuples() if t not in covered)
        database.remove_tuple(victim.relation_name, victim.label)
        revalidations_before = cache.stats()["revalidations"]
        misses_before = cache.stats()["misses"]
        started = time.perf_counter()
        session = cache.open(database, "fd", use_index=True)
        served = session.next(K)
        warm_seconds = time.perf_counter() - started
        assert [_key(ts) for ts in served] == [_key(ts) for ts in prefix]
        # The machine-independent claim, asserted always: the revalidated
        # open recomputed *nothing* — no new cache miss, one revalidation.
        assert cache.stats()["revalidations"] == revalidations_before + 1
        assert cache.stats()["misses"] == misses_before
        if not smoke:
            # The wall-clock claim is asserted outside CI smoke runs only
            # (shared-runner scheduler noise at sub-ms scale).
            assert warm_seconds < cold_seconds, (
                f"revalidated first-{K} open {warm_seconds:.4f}s not below "
                f"cold {cold_seconds:.4f}s"
            )
        rows.append(
            [
                round_index + 1,
                f"{victim.relation_name}/{victim.label}",
                K,
                f"{cold_seconds:.5f}",
                f"{warm_seconds:.5f}",
                f"{cold_seconds / max(warm_seconds, 1e-9):.1f}x",
                cache.stats()["revalidations"],
            ]
        )

    report_table(
        f"E12b: cached first-{K} across deletions — epoch-revalidated open "
        f"vs cold run ({spokes}-spoke star)",
        ["deletion", "victim", "k", "cold (s)", "revalidated (s)", "speedup",
         "revalidations"],
        rows,
    )

    benchmark(lambda: cold_first_k()[1])


def _timed(thunk):
    started = time.perf_counter()
    value = thunk()
    return value, time.perf_counter() - started
