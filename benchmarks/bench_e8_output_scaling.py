"""E8 — output-sensitivity: the result may be exponential in n (Section 3).

The size of ``FD(R_1, …, R_n)`` can grow exponentially with the number of
relations, which is why the paper analyses the algorithms under input–output
complexity and why incremental delivery matters.  On star schemas with a
growing number of spokes the experiment reports the output size, the total
runtime, the runtime per produced answer, and the time to the first 10
answers.  Expected shape: the output (and hence the total time) explodes with
the spoke count, the per-answer cost grows only mildly, and the time to the
first 10 answers stays essentially flat — the PINC behaviour.
"""

import time

from repro.bench.reporting import probe_counters
from repro.core.full_disjunction import first_k, full_disjunction
from repro.core.incremental import FDStatistics
from repro.workloads.generators import star_database

SPOKES = (2, 3, 4, 5)


def test_e8_output_scaling_on_stars(benchmark, report_table):
    rows = []
    for spokes in SPOKES:
        database = star_database(spokes=spokes, tuples_per_relation=6, hub_domain=2, seed=6)
        statistics = FDStatistics()
        started = time.perf_counter()
        results = full_disjunction(database, use_index=True, statistics=statistics)
        total_seconds = time.perf_counter() - started

        started = time.perf_counter()
        prefix = first_k(database, 10, use_index=True)
        first_10_seconds = time.perf_counter() - started
        assert len(prefix) == min(10, len(results))

        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                spokes,
                database.tuple_count(),
                len(results),
                f"{total_seconds:.3f}",
                f"{1000.0 * total_seconds / len(results):.2f}",
                f"{first_10_seconds:.4f}",
                bucket_probes,
                full_scans,
            ]
        )

    report_table(
        "E8: output size and runtime on star schemas (6 tuples per relation, 2 hub values)",
        [
            "spokes n",
            "input tuples",
            "|FD|",
            "total time (s)",
            "ms per answer",
            "time to first 10 (s)",
            "bucket probes",
            "full scans",
        ],
        rows,
    )

    database = star_database(spokes=4, tuples_per_relation=6, hub_domain=2, seed=6)
    benchmark(lambda: full_disjunction(database, use_index=True))
