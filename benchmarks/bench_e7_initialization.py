"""E7 — initialization strategies for Incomplete across the n passes (Section 7).

Computing ``FD(R)`` runs one pass per relation; with the default singleton
initialization every answer with j tuples is re-derived j times.  The
experiment compares the three strategies the paper proposes — singletons,
previous-results reuse, and reduced-previous reuse — on the produced work:
results generated per pass (including re-derivations), tuples read, candidate
tuple sets generated, and wall time.  All strategies produce the same full
disjunction; the reuse strategies cut the re-derivation work.
"""

import time

from repro.bench.reporting import probe_counters
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.initialization import STRATEGIES
from repro.workloads.generators import chain_database


def test_e7_initialization_strategies(benchmark, report_table):
    database = chain_database(
        relations=4, tuples_per_relation=16, domain_size=5, null_rate=0.1, seed=8
    )

    reference = None
    rows = []
    for strategy in STRATEGIES:
        statistics = FDStatistics()
        started = time.perf_counter()
        results = full_disjunction(
            database, use_index=True, initialization=strategy, statistics=statistics
        )
        elapsed = time.perf_counter() - started
        produced = {ts.labels() for ts in results}
        if reference is None:
            reference = produced
        assert produced == reference
        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                strategy,
                len(results),
                statistics.results,
                statistics.tuple_reads,
                statistics.candidates_generated,
                f"{elapsed:.3f}",
                bucket_probes,
                full_scans,
            ]
        )

    report_table(
        "E7: initialization strategies across the n passes "
        f"(chain of {len(database)} relations, |FD| = {len(reference)}, indexed store)",
        [
            "strategy",
            "|FD|",
            "results generated (incl. re-derivations)",
            "tuple reads",
            "candidates generated",
            "wall time (s)",
            "bucket probes",
            "full scans",
        ],
        rows,
    )

    benchmark(
        lambda: full_disjunction(database, initialization="previous-results")
    )
