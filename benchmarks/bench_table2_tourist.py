"""T2 — Table 2 of the paper: the full disjunction of the tourist relations.

Regenerates the six tuple sets of Table 2 (with their padded rows) and checks
them against the expected contents; the timed operation is the complete
``FD(R)`` computation on the paper's example.
"""

from repro.core.full_disjunction import FullDisjunction
from repro.relational.nulls import is_null
from repro.workloads.tourist import TABLE2_TUPLE_SETS, tourist_database


def test_table2_full_disjunction(benchmark, report_table):
    database = tourist_database()

    results = benchmark(lambda: FullDisjunction(database).compute())

    assert {ts.labels() for ts in results} == set(TABLE2_TUPLE_SETS)

    fd = FullDisjunction(database)
    schema = fd.result_schema()
    rows = []
    for tuple_set, padded in zip(fd.compute(), fd.padded_rows()):
        labels = "{" + ", ".join(sorted(t.label for t in tuple_set)) + "}"
        rows.append(
            [labels]
            + ["⊥" if is_null(padded[a]) else str(padded[a]) for a in schema.attributes]
        )
    report_table(
        "T2: FD(Climates, Accommodations, Sites) — paper Table 2",
        ["tuple set"] + list(schema.attributes),
        rows,
    )
