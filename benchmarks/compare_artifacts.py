"""Diff two BENCH_*.json artifact sets and flag metric regressions.

Usage::

    python benchmarks/compare_artifacts.py BASELINE_DIR CURRENT_DIR \
        [--tolerance 0.25] [--fail-on-regression]

Artifacts are matched by filename, tables by title, and rows by their
non-numeric key cells (workload/backend/operation labels), so reordered rows
and newly added tables never produce false regressions.  Every numeric cell
shared by both sides becomes one comparison; the column header decides the
direction (times, RSS, scan counts: lower is better; speedups, hit rates,
throughput: higher is better).  Memory entries (``memory`` lists recorded by
``BenchArtifacts.record_memory``) are compared by label on their
``peak_rss_bytes``.

A change worse than ``--tolerance`` (relative) is a REGRESSION, better is an
IMPROVEMENT, anything inside the band is steady.  The exit code is 0 unless
``--fail-on-regression`` is given and at least one regression was found —
CI runs the comparison informationally (smoke-scale timings are noisy) and
prints the trend table into the job log.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, List, Optional, Tuple

#: Header keywords marking lower-is-better metrics.
LOWER_BETTER = (
    "time", "(s)", "seconds", "rss", "bytes", "scanned", "reads",
    "probes", "scans", "lag", "candidates", "latency", "overhead",
)

#: Header keywords marking higher-is-better metrics (checked first).
HIGHER_BETTER = ("speedup", "vs serial", "hit", "throughput", "results/s", "rate")


def metric_direction(header: str) -> Optional[int]:
    """``-1`` when lower is better, ``+1`` when higher, ``None`` when unknown."""
    lowered = header.lower()
    if any(key in lowered for key in HIGHER_BETTER):
        return 1
    if any(key in lowered for key in LOWER_BETTER):
        return -1
    return None


_NUMERIC = re.compile(r"^-?\d+(?:\.\d+)?(?:e[+-]?\d+)?x?$", re.IGNORECASE)


def as_number(cell: object) -> Optional[float]:
    """The numeric value of a cell (``"1.23"``, ``"2.5x"``, 42) or ``None``."""
    if isinstance(cell, bool):
        return None
    if isinstance(cell, (int, float)):
        return float(cell)
    if isinstance(cell, str) and _NUMERIC.match(cell.strip()):
        return float(cell.strip().rstrip("xX"))
    return None


def row_key(headers: List[str], row: List[object]) -> Tuple:
    """A row's identity: its non-numeric cells (labels), positionally."""
    return tuple(
        str(cell)
        for header, cell in zip(headers, row)
        if as_number(cell) is None
    )


def load_artifacts(directory: pathlib.Path) -> Dict[str, dict]:
    found: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(document, dict):
            found[path.name] = document
    return found


class Comparison:
    __slots__ = ("where", "metric", "baseline", "current", "delta", "status")

    def __init__(self, where, metric, baseline, current, delta, status):
        self.where = where
        self.metric = metric
        self.baseline = baseline
        self.current = current
        self.delta = delta
        self.status = status


def classify(
    baseline: float, current: float, direction: Optional[int], tolerance: float
) -> Tuple[float, str]:
    """Relative change and its verdict under the tolerance band."""
    if baseline == 0:
        delta = 0.0 if current == 0 else float("inf")
    else:
        delta = (current - baseline) / abs(baseline)
    if direction is None:
        # No known direction: any drift beyond tolerance is only INFO —
        # counts like |FD| changing is a correctness matter, not a trend.
        return delta, "changed" if abs(delta) > tolerance else "steady"
    worse = delta * direction < 0
    if abs(delta) <= tolerance:
        return delta, "steady"
    return delta, "regression" if worse else "improvement"


def compare_tables(
    name: str, baseline: dict, current: dict, tolerance: float
) -> List[Comparison]:
    comparisons: List[Comparison] = []
    baseline_tables = {t.get("title"): t for t in baseline.get("tables", [])}
    for table in current.get("tables", []):
        base_table = baseline_tables.get(table.get("title"))
        if base_table is None:
            continue
        headers = [str(h) for h in table.get("headers", [])]
        if headers != [str(h) for h in base_table.get("headers", [])]:
            continue
        # Keys carry an occurrence index so tables with repeated (or empty)
        # label cells still match row-for-row in order.
        base_rows: Dict[Tuple, list] = {}
        base_seen: Dict[Tuple, int] = {}
        for row in base_table.get("rows", []):
            key = row_key(headers, row)
            occurrence = base_seen.get(key, 0)
            base_seen[key] = occurrence + 1
            base_rows[key + (occurrence,)] = row
        current_seen: Dict[Tuple, int] = {}
        for row in table.get("rows", []):
            key = row_key(headers, row)
            occurrence = current_seen.get(key, 0)
            current_seen[key] = occurrence + 1
            base_row = base_rows.get(key + (occurrence,))
            if base_row is None:
                continue
            for header, base_cell, cell in zip(headers, base_row, row):
                base_value = as_number(base_cell)
                value = as_number(cell)
                if base_value is None or value is None:
                    continue
                direction = metric_direction(header)
                delta, status = classify(base_value, value, direction, tolerance)
                where = f"{name} :: {table['title']} :: {' / '.join(row_key(headers, row)) or '-'}"
                comparisons.append(
                    Comparison(where, header, base_value, value, delta, status)
                )
    baseline_memory = {
        entry.get("label"): entry for entry in baseline.get("memory", [])
    }
    for entry in current.get("memory", []):
        base_entry = baseline_memory.get(entry.get("label"))
        if base_entry is None:
            continue
        base_value = as_number(base_entry.get("peak_rss_bytes"))
        value = as_number(entry.get("peak_rss_bytes"))
        if base_value is None or value is None:
            continue
        delta, status = classify(base_value, value, -1, tolerance)
        comparisons.append(
            Comparison(
                f"{name} :: memory :: {entry.get('label')}",
                "peak_rss_bytes",
                base_value,
                value,
                delta,
                status,
            )
        )
    return comparisons


def format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="baseline artifact directory")
    parser.add_argument("current", type=pathlib.Path, help="current artifact directory")
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative change treated as noise (default: 0.25)",
    )
    parser.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when any regression exceeds the tolerance",
    )
    arguments = parser.parse_args(argv)

    baseline = load_artifacts(arguments.baseline)
    current = load_artifacts(arguments.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("no artifact files in common; nothing to compare")
        return 0

    comparisons: List[Comparison] = []
    for name in shared:
        comparisons.extend(
            compare_tables(name, baseline[name], current[name], arguments.tolerance)
        )
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))

    regressions = [c for c in comparisons if c.status == "regression"]
    improvements = [c for c in comparisons if c.status == "improvement"]
    interesting = [c for c in comparisons if c.status != "steady"]

    print(
        f"compared {len(shared)} artifact file(s), "
        f"{len(comparisons)} metric(s); tolerance ±{arguments.tolerance:.0%}"
    )
    if only_current:
        print(f"new artifacts (no baseline): {', '.join(only_current)}")
    if only_baseline:
        print(f"baseline-only artifacts: {', '.join(only_baseline)}")
    if not interesting:
        print("all shared metrics steady")
    else:
        width = max(len(c.status) for c in interesting)
        for c in sorted(interesting, key=lambda c: (c.status != "regression", c.where)):
            print(
                f"  {c.status.upper():<{width + 1}} {c.where} [{c.metric}]: "
                f"{format_value(c.baseline)} -> {format_value(c.current)} "
                f"({c.delta:+.1%})"
            )
    print(
        f"summary: {len(regressions)} regression(s), "
        f"{len(improvements)} improvement(s), "
        f"{len(comparisons) - len(interesting)} steady"
    )
    if regressions and arguments.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
