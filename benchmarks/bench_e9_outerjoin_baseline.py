"""E9 — the outerjoin baseline of Rajaraman & Ullman [2] vs. IncrementalFD.

Reference [2] computes full disjunctions with a sequence of binary full
outerjoins, but only for γ-acyclic schemas; the paper's algorithm works for
arbitrary connected relations.  The experiment checks, for a γ-acyclic chain,
a γ-acyclic star, the (γ-acyclic) tourist schema and a cyclic schema, whether
*any* outerjoin order reproduces ``FD(R)``, and compares the runtime of the
best outerjoin sequence against IncrementalFD where one exists.  Expected
shape: an order exists exactly for the γ-acyclic schemas; for the cycle no
order works and only IncrementalFD computes the full disjunction.
"""

import time

from repro.baselines.acyclicity import is_gamma_acyclic
from repro.baselines.outerjoin import exists_correct_outerjoin_order, outerjoin_sequence
from repro.bench.reporting import probe_counters
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.workloads.generators import chain_database, cycle_database, star_database
from repro.workloads.tourist import tourist_database


def _workloads():
    return [
        ("tourist (Table 1)", tourist_database()),
        ("chain, 3 relations", chain_database(relations=3, tuples_per_relation=8,
                                               domain_size=4, null_rate=0.1, seed=12)),
        ("star, 3 spokes", star_database(spokes=3, tuples_per_relation=5,
                                         hub_domain=2, seed=12)),
        ("cycle, 3 relations", cycle_database(relations=3, tuples_per_relation=6,
                                              domain_size=3, null_rate=0.0, seed=12)),
    ]


def test_e9_outerjoin_baseline(benchmark, report_table):
    rows = []
    for name, database in _workloads():
        gamma = is_gamma_acyclic(database)

        statistics = FDStatistics()
        started = time.perf_counter()
        reference = full_disjunction(database, use_index=True, statistics=statistics)
        incremental_seconds = time.perf_counter() - started

        order = exists_correct_outerjoin_order(database, reference)
        if order is not None:
            started = time.perf_counter()
            outerjoin_sequence(database, order)
            outerjoin_seconds = f"{time.perf_counter() - started:.3f}"
            order_cell = " ⟗ ".join(order)
        else:
            outerjoin_seconds = "-"
            order_cell = "none exists"
        # [2]'s applicability matches γ-acyclicity on these workloads.
        assert (order is not None) == gamma

        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                name,
                "yes" if gamma else "no",
                len(reference),
                f"{incremental_seconds:.3f}",
                order_cell,
                outerjoin_seconds,
                bucket_probes,
                full_scans,
            ]
        )

    report_table(
        "E9: outerjoin sequences [2] vs. IncrementalFD",
        [
            "workload",
            "γ-acyclic",
            "|FD|",
            "IncrementalFD (s)",
            "correct outerjoin order",
            "outerjoin sequence (s)",
            "bucket probes",
            "full scans",
        ],
        rows,
    )

    database = tourist_database()
    benchmark(lambda: outerjoin_sequence(database, ["Accommodations", "Sites", "Climates"]))
