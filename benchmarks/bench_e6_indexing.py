"""E6 — hash-indexing Complete/Incomplete (Section 7) and the tuple-set representation.

Section 7 recommends hashing the two lists on their ``R_i`` tuple so the
subsumption (Line 11) and merge (Line 14) probes only scan the relevant
bucket.  The experiment measures wall time and the number of stored sets
scanned, with and without the dual-indexed store of :mod:`repro.core.store`,
on workloads whose output is large enough for the quadratic list management to
matter.  A second table micro-benchmarks the paper's sorted-triple
representation against the interned bitset ``TupleSet`` representation on the
Line-14 consistency test.

Set ``REPRO_BENCH_SMOKE=1`` to restrict the sweep to the smallest workload
(used by the CI smoke job).
"""

import os
import time

from repro.bench.reporting import BACKEND_SWEEP_HEADERS, backend_sweep_rows
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics, incremental_fd
from repro.core.triples import TripleList, merge_join_consistent
from repro.core.tupleset import TupleSet
from repro.workloads.generators import star_database


def _run(database, use_index):
    statistics = FDStatistics()
    started = time.perf_counter()
    results = list(
        incremental_fd(database, database.relation_names[0], use_index=use_index,
                       statistics=statistics)
    )
    elapsed = time.perf_counter() - started
    return results, elapsed, statistics


def _sets_scanned(statistics):
    return statistics.extras.get("complete_sets_scanned", 0) + statistics.extras.get(
        "incomplete_sets_scanned", 0
    )


def test_e6_indexing_complete_and_incomplete(benchmark, report_table):
    workloads = ((4, 6),) if os.environ.get("REPRO_BENCH_SMOKE") else ((4, 6), (5, 6))
    rows = []
    for spokes, per_relation in workloads:
        database = star_database(
            spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=4
        )
        plain_results, plain_seconds, plain_statistics = _run(database, use_index=False)
        indexed_results, indexed_seconds, indexed_statistics = _run(database, use_index=True)
        assert {ts.labels() for ts in plain_results} == {
            ts.labels() for ts in indexed_results
        }
        plain_scanned = _sets_scanned(plain_statistics)
        indexed_scanned = _sets_scanned(indexed_statistics)
        # The headline claim of the indexed store layer: the subsumption and
        # merge probes touch at least 2x fewer stored sets than linear lists.
        assert plain_scanned >= 2 * indexed_scanned
        rows.append(
            [
                f"star {spokes}x{per_relation}",
                len(plain_results),
                f"{plain_seconds:.3f}",
                f"{indexed_seconds:.3f}",
                f"{plain_seconds / indexed_seconds:.2f}x",
                plain_scanned,
                indexed_scanned,
                f"{plain_scanned / max(indexed_scanned, 1):.1f}x",
            ]
        )

    report_table(
        "E6: IncrementalFD with and without the Section 7 dual-indexed store",
        [
            "workload",
            "|FD_1|",
            "linear lists (s)",
            "indexed store (s)",
            "speedup",
            "sets scanned (lists)",
            "sets scanned (indexed)",
            "scan drop",
        ],
        rows,
    )

    # The --backend axis: the full driver on the same workloads, per backend.
    backend_rows = []
    for spokes, per_relation in workloads:
        database = star_database(
            spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=4
        )
        backend_rows.extend(
            backend_sweep_rows(database, f"star {spokes}x{per_relation}")
        )
    report_table(
        "E6c: full-disjunction driver per execution backend (indexed store)",
        list(BACKEND_SWEEP_HEADERS),
        backend_rows,
    )

    # Micro-benchmark of the two tuple-set representations on the Line-14 test.
    database = star_database(spokes=4, tuples_per_relation=6, hub_domain=2, seed=4)
    results = full_disjunction(database, use_index=True)[:40]
    pairs = [(a, b) for a in results for b in results][:800]

    started = time.perf_counter()
    for first, second in pairs:
        first.union_is_jcc(second)
    tuple_set_seconds = time.perf_counter() - started

    triple_lists = {ts: TripleList.from_tuple_set(ts) for ts in results}
    started = time.perf_counter()
    for first, second in pairs:
        merge_join_consistent(triple_lists[first], triple_lists[second])
    triple_seconds = time.perf_counter() - started

    report_table(
        "E6b: Line-14 consistency test — interned bitset TupleSet vs. sorted "
        f"triple lists ({len(pairs)} pairs)",
        ["representation", "seconds"],
        [
            ["TupleSet (interned bitset masks)", f"{tuple_set_seconds:.4f}"],
            ["sorted triple lists (paper's structure)", f"{triple_seconds:.4f}"],
        ],
    )

    benchmark(lambda: _run(database, use_index=True))
