"""T3 — Table 3 of the paper: the Incomplete/Complete trace of ``IncrementalFD(R, 1)``.

Regenerates the list contents after initialization and after each of the six
iterations, and checks them against the paper's table, column by column.
"""

from repro.core.trace import trace_incremental_fd
from repro.workloads.tourist import TABLE3_TRACE, tourist_database


def test_table3_execution_trace(benchmark, report_table):
    database = tourist_database()

    trace = benchmark(lambda: trace_incremental_fd(database, "Climates"))

    for label, incomplete, complete in TABLE3_TRACE:
        snapshot = trace.snapshot(label)
        assert snapshot.incomplete_labels() == incomplete, label
        assert snapshot.complete_labels() == complete, label

    def render(sets):
        return " ".join("{" + ",".join(sorted(labels)) + "}" for labels in sets) or "-"

    rows = []
    for label, incomplete, complete in TABLE3_TRACE:
        rows.append([label, render(incomplete), render(complete)])
    report_table(
        "T3: IncrementalFD({Climates, Accommodations, Sites}, 1) — paper Table 3",
        ["snapshot", "Incomplete", "Complete"],
        rows,
    )
