"""E17 — out-of-core catalogs: RSS under a budget, latency, worker startup.

Three claims about the mmap-backed mirror (`relational/catalog_file.py`),
measured end to end:

* **E17a — over-budget open + streaming.**  A chain database whose packed
  mirror file *exceeds* a capped RSS budget opens for serving bounded
  under the budget — attaching maps the matrix instead of materialising
  it, so the open-time footprint is the light tuple shell — and then
  streams its first-k answers with peak RSS still under the budget: a
  page governor (watermark + `MirrorFile.release_pages`) emulates the
  cap by dropping clean mapped pages, exactly what the kernel would do
  under real memory pressure.  The in-RAM configuration of the same
  database (unpickle + RAM mirror) busts the budget before streaming a
  single answer, and its stream peak carries the whole matrix twice
  (big-int rows + RAM mirror).  Both arms must stream identical
  answers; each runs in a fresh child process measured by its own
  ``VmHWM`` (Linux never resets ``ru_maxrss`` across ``exec``, so the
  child would otherwise inherit the benchmark parent's mark).
* **E17b — in-RAM-sized latency.**  On a fixture that comfortably fits in
  RAM, first-k through the attached (mmap) catalog stays within
  ``MAX_LATENCY_RATIO`` (2×) of the RAM-mirrored run, with identical
  ordered streams and ``sets_scanned``.
* **E17c — worker startup.**  The sharded backend's worker cold start,
  dispatch + materialise: pickling the whole database and unpickling it
  in the worker, vs stamping a ``(path, generation)`` reference and
  mapping the durable mirror file (`exec/sharded.py`).  The reference
  transport must win end to end on the large fixture — it ships ~100
  bytes where the pickle ships the whole matrix.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the sweep (used by the CI smoke
job); the budget assertions only apply at full scale, where the mirror
actually dwarfs the budget.
"""

import json
import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.core.full_disjunction import first_k, full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.kernels import numpy_available
from repro.exec.sharded import _database_payload, _payload_probe
from repro.relational.catalog_file import load_database
from repro.workloads.generators import chain_database, star_database

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the mmap backing needs NumPy"
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: E17a fixture: a chain database big enough that its mirror file exceeds
#: the RSS budget at full scale (n = 5 * tuples_per_relation).
CHAIN_SHAPE = dict(
    relations=5,
    tuples_per_relation=160 if SMOKE else 7200,
    domain_size=80 if SMOKE else 3600,
    null_rate=0.05,
    seed=11,
)

#: The capped RSS budget of E17a.  At full scale the n=36000 mirror is
#: ~156 MiB — comfortably above the cap — while attaching it maps the
#: matrix and materialises only the light tuple shell, well below it.
#: The in-RAM configuration must materialise the pickled big-int catalog
#: (≈ the matrix again, as Python ints) before it can serve at all.
BUDGET_BYTES = 144 * 2**20

#: Answers streamed by each E17a arm (serial backend: the smallest
#: working set, so the budget measures the catalog story, not batching
#: transients).
STREAM_K = 2

#: E17b fixture: in-RAM-sized (n=1200 full scale).
STAR_SHAPE = dict(
    spokes=3,
    tuples_per_relation=120 if SMOKE else 400,
    hub_domain=40,
    null_rate=0.1,
    seed=3,
)

#: E17b answers per arm, and the headline latency bound.
LATENCY_K = 8 if SMOKE else 24
MAX_LATENCY_RATIO = 2.0

#: Cold-start probes per transport in E17c (min taken).
PROBE_REPEATS = 3


def _chain():
    return chain_database(**CHAIN_SHAPE)


def _star():
    return star_database(**STAR_SHAPE)


# --------------------------------------------------------------------------- #
# E17a children — each arm runs in a fresh process so ru_maxrss is its own
# --------------------------------------------------------------------------- #

#: Shared by both children: stream first-k serially, report labels + RSS.
_CHILD_COMMON = """
import json, resource, sys, time

def peak_rss():
    # Linux never resets ru_maxrss across exec, so a subprocess would
    # inherit the fat benchmark parent's high-water mark at fork; VmHWM
    # belongs to the child's own mm and starts fresh.
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw if sys.platform == "darwin" else raw * 1024

from repro.core.full_disjunction import first_k
"""

_ATTACHED_CHILD = _CHILD_COMMON + """
import threading
from repro.relational.catalog_file import load_database

path, k, watermark = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
started = time.perf_counter()
database = load_database(path)
attach_seconds = time.perf_counter() - started
open_rss = peak_rss()  # high-water so far: the whole cost of opening
handle = database.catalog()._packed_mirror.file

# The page governor: emulate a hard RSS cap by dropping clean mapped pages
# whenever the resident set crosses the watermark (the budget minus a
# fault-in allowance).  Under a real cgroup cap the kernel performs this
# same reclaim; here it is explicit so ru_maxrss proves the engine never
# *needs* more than the budget resident.
stop = threading.Event()

def current_rss():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS"):
                return int(line.split()[1]) * 1024
    return 0

def governor():
    # 5 ms poll: one kernel row-gather can touch the whole matrix at memory
    # bandwidth, so the reclaim must keep up with the fault-in rate.
    while not stop.wait(0.005):
        if current_rss() > watermark:
            handle.release_pages()

thread = threading.Thread(target=governor, daemon=True)
thread.start()
results = []
started = time.perf_counter()
for tuple_set in first_k(database, k, backend="serial"):
    results.append(sorted(tuple_set.labels()))
    handle.release_pages()
stream_seconds = time.perf_counter() - started
stop.set()
thread.join()
print(json.dumps({
    "results": results,
    "attach_seconds": attach_seconds,
    "open_rss_bytes": open_rss,
    "stream_seconds": stream_seconds,
    "peak_rss_bytes": peak_rss(),
}))
"""

_INRAM_CHILD = _CHILD_COMMON + """
import pickle

path, k = sys.argv[1], int(sys.argv[2])
started = time.perf_counter()
with open(path, "rb") as fh:
    database = pickle.load(fh)
database.catalog().packed_mirror()
load_seconds = time.perf_counter() - started
load_rss = peak_rss()
results = []
started = time.perf_counter()
for tuple_set in first_k(database, k, backend="serial"):
    results.append(sorted(tuple_set.labels()))
stream_seconds = time.perf_counter() - started
print(json.dumps({
    "results": results,
    "load_seconds": load_seconds,
    "load_rss_bytes": load_rss,
    "stream_seconds": stream_seconds,
    "peak_rss_bytes": peak_rss(),
}))
"""


def _run_child(script: str, *args: str) -> dict:
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    output = subprocess.check_output(
        [sys.executable, "-c", script, *args], env=environment
    )
    return json.loads(output)


@pytest.fixture(scope="module")
def chain_fixture(tmp_path_factory):
    """Pack the E17a chain database once: mirror file + pickle twin."""
    directory = tmp_path_factory.mktemp("e17a")
    database = _chain()
    database.catalog()
    # Pickle BEFORE attaching the mirror: a catalog pickled with a mirror
    # path reattaches to the file in O(1) (that is the point of the fix in
    # Catalog.__getstate__), which would silently turn the "in-RAM"
    # configuration into a second mmap run.
    pickle_path = str(directory / "chain.pkl")
    with open(pickle_path, "wb") as handle:
        pickle.dump(database, handle, protocol=pickle.HIGHEST_PROTOCOL)
    mirror_path = str(directory / "chain.rpmc")
    database.save_mirror(mirror_path)
    return {
        "database": database,
        "mirror_path": mirror_path,
        "pickle_path": pickle_path,
        "mirror_bytes": os.path.getsize(mirror_path),
        "pickle_bytes": os.path.getsize(pickle_path),
    }


def test_e17a_over_budget_streaming(chain_fixture, report_table, report_memory):
    mirror_bytes = chain_fixture["mirror_bytes"]
    watermark = BUDGET_BYTES - 32 * 2**20
    attached = _run_child(
        _ATTACHED_CHILD, chain_fixture["mirror_path"], str(STREAM_K), str(watermark)
    )
    in_ram = _run_child(_INRAM_CHILD, chain_fixture["pickle_path"], str(STREAM_K))

    # The transport must be invisible: identical answer streams.
    assert attached["results"] == in_ram["results"]
    assert len(attached["results"]) == STREAM_K

    def mib(value):
        return f"{value / 2**20:.1f}"

    report_table(
        "E17a: open + first-%d over a capped RSS budget (%s MiB, mirror %s MiB)"
        % (STREAM_K, mib(BUDGET_BYTES), mib(mirror_bytes)),
        [
            "configuration",
            "open (s)",
            "open RSS (MiB)",
            "open under budget",
            "stream (s)",
            "peak RSS (MiB)",
        ],
        [
            [
                "attached (mmap + governor)",
                f"{attached['attach_seconds']:.3f}",
                mib(attached["open_rss_bytes"]),
                attached["open_rss_bytes"] <= BUDGET_BYTES,
                f"{attached['stream_seconds']:.3f}",
                mib(attached["peak_rss_bytes"]),
            ],
            [
                "in-RAM (unpickle + mirror)",
                f"{in_ram['load_seconds']:.3f}",
                mib(in_ram["load_rss_bytes"]),
                in_ram["load_rss_bytes"] <= BUDGET_BYTES,
                f"{in_ram['stream_seconds']:.3f}",
                mib(in_ram["peak_rss_bytes"]),
            ],
        ],
    )
    report_memory(
        "e17a-attached-open",
        attached["open_rss_bytes"],
        budget_bytes=BUDGET_BYTES,
    )
    report_memory("e17a-in-ram-open", in_ram["load_rss_bytes"])
    report_memory("e17a-attached-stream", attached["peak_rss_bytes"])
    report_memory("e17a-in-ram-stream", in_ram["peak_rss_bytes"])

    if not SMOKE:
        # The mirror alone does not fit the budget …
        assert mirror_bytes > BUDGET_BYTES
        # … yet attaching it opens for serving bounded under the budget
        # (the matrix is mapped, not materialised) …
        assert attached["open_rss_bytes"] <= BUDGET_BYTES, (
            f"attached open {attached['open_rss_bytes']} over budget {BUDGET_BYTES}"
        )
        # … and the governed stream stays bounded under it end to end
        # (measured ~118 MiB at n=36000: anonymous working state plus the
        # fault-in allowance above the watermark) …
        assert attached["peak_rss_bytes"] <= BUDGET_BYTES, (
            f"attached peak {attached['peak_rss_bytes']} over budget {BUDGET_BYTES}"
        )
        # … while the in-RAM configuration busts the budget before it can
        # stream a single answer.
        assert in_ram["load_rss_bytes"] > BUDGET_BYTES
        assert in_ram["peak_rss_bytes"] > BUDGET_BYTES


# --------------------------------------------------------------------------- #
# E17b — latency on the in-RAM-sized fixture
# --------------------------------------------------------------------------- #

def _stream_first_k(database, k):
    statistics = FDStatistics()
    started = time.perf_counter()
    results = [
        tuple(sorted(ts.labels()))
        for ts in first_k(database, k, backend="batched", statistics=statistics)
    ]
    seconds = time.perf_counter() - started
    return results, statistics.extras.get("complete_sets_scanned", 0), seconds


def test_e17b_in_ram_sized_latency(tmp_path, report_table):
    ram = _star()
    ram.catalog().packed_mirror()
    mapped = _star()
    mapped.save_mirror(str(tmp_path / "star.rpmc"))

    ram_results, ram_scanned, ram_seconds = _stream_first_k(ram, LATENCY_K)
    attached = load_database(str(tmp_path / "star.rpmc"))
    att_results, att_scanned, att_seconds = _stream_first_k(attached, LATENCY_K)

    assert att_results == ram_results
    assert att_scanned == ram_scanned
    ratio = att_seconds / ram_seconds
    report_table(
        f"E17b: first-{LATENCY_K} latency, RAM vs attached mirror (batched)",
        ["backing", "first-k (s)", "sets scanned", "vs RAM"],
        [
            ["ram", f"{ram_seconds:.3f}", ram_scanned, "1.00x"],
            ["mmap (attached)", f"{att_seconds:.3f}", att_scanned, f"{ratio:.2f}x"],
        ],
    )
    if not SMOKE:
        assert ratio <= MAX_LATENCY_RATIO, (
            f"attached first-{LATENCY_K} is {ratio:.2f}x the RAM run"
        )


# --------------------------------------------------------------------------- #
# E17c — worker startup: mmap attach vs whole-database pickle
# --------------------------------------------------------------------------- #

def _timed(function):
    started = time.perf_counter()
    value = function()
    return value, time.perf_counter() - started


def test_e17c_worker_startup(chain_fixture, report_table, benchmark):
    mapped = load_database(chain_fixture["mirror_path"])
    with open(chain_fixture["pickle_path"], "rb") as handle:
        plain = pickle.load(handle)
    plain.catalog().packed_mirror()  # RAM mirror (pickled pre-save): pickle transport

    # Dispatch: what the coordinator pays to snapshot the database for a
    # pass — pickling the whole thing vs stamping a file reference.
    reference_payload, reference_dispatch = min(
        (_timed(lambda: _database_payload(mapped)) for _ in range(PROBE_REPEATS)),
        key=lambda pair: pair[1],
    )
    pickle_payload, pickle_dispatch = min(
        (_timed(lambda: _database_payload(plain)) for _ in range(PROBE_REPEATS)),
        key=lambda pair: pair[1],
    )
    assert not isinstance(reference_payload[1], bytes), (
        "the durable mirror must ship a path reference"
    )
    assert isinstance(pickle_payload[1], bytes)

    # Materialise: the worker-side cold start for each transport.
    attach_seconds = min(
        _payload_probe(reference_payload) for _ in range(PROBE_REPEATS)
    )
    pickle_seconds = min(
        _payload_probe(pickle_payload) for _ in range(PROBE_REPEATS)
    )
    reference_total = reference_dispatch + attach_seconds
    pickle_total = pickle_dispatch + pickle_seconds
    speedup = pickle_total / reference_total
    report_table(
        "E17c: worker startup, dispatch + cold materialisation "
        f"(n={chain_fixture['database'].tuple_count()})",
        [
            "transport",
            "payload size",
            "dispatch (s)",
            "materialise (s)",
            "total (s)",
            "speedup",
        ],
        [
            [
                "pickle (whole database)",
                f"{len(pickle_payload[1]) / 2**20:.1f} MiB",
                f"{pickle_dispatch:.4f}",
                f"{pickle_seconds:.4f}",
                f"{pickle_total:.4f}",
                "1.00x",
            ],
            [
                "mmap ((path, generation))",
                "~0 (reference)",
                f"{reference_dispatch:.4f}",
                f"{attach_seconds:.4f}",
                f"{reference_total:.4f}",
                f"{speedup:.1f}x",
            ],
        ],
    )
    if not SMOKE:
        assert reference_total < pickle_total, (
            f"mmap startup {reference_total:.4f}s vs pickle {pickle_total:.4f}s"
        )

    # pytest-benchmark times the mmap cold start in isolation.
    benchmark(lambda: _payload_probe(reference_payload))


# --------------------------------------------------------------------------- #
# sharded parity rides along: file-backed fan-out, identical streams
# --------------------------------------------------------------------------- #

def test_e17d_sharded_file_backed_parity(tmp_path, report_table):
    # Fixed small shape even at full scale: this leg checks the transport
    # (full FD × 3 worker counts × 2 backings), not size.
    def build():
        return star_database(
            spokes=3, tuples_per_relation=120, hub_domain=40, null_rate=0.1, seed=3
        )

    ram = build()
    ram.catalog().packed_mirror()
    mapped = build()
    mapped.save_mirror(str(tmp_path / "shard.rpmc"))

    def stream(database, backend):
        statistics = FDStatistics()
        results = full_disjunction(
            database, use_index=True, statistics=statistics, backend=backend
        )
        return (
            [tuple(sorted(ts.labels())) for ts in results],
            statistics.extras.get("complete_sets_scanned", 0),
        )

    rows = []
    reference = None
    for workers in (1, 2, 4):
        backend = f"sharded:{workers}"
        ram_stream = stream(ram, backend)
        started = time.perf_counter()
        mapped_stream = stream(mapped, backend)
        seconds = time.perf_counter() - started
        assert mapped_stream == ram_stream
        if reference is None:
            reference = mapped_stream
        assert mapped_stream == reference, f"{backend} reordered the stream"
        rows.append([backend, len(mapped_stream[0]), mapped_stream[1], f"{seconds:.3f}"])
    report_table(
        "E17d: sharded fan-out over the mirror file (streams byte-identical "
        "to RAM and across worker counts)",
        ["backend", "|FD|", "sets scanned", "mapped wall (s)"],
        rows,
    )
