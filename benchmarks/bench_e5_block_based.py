"""E5 — block-based execution (Section 7).

The block-based variant fetches tuples a block at a time, which is how the
algorithm would live inside a query processor.  The answers are identical; the
experiment reports the simulated I/O requests (block fetches) against the
tuple-based execution, for growing block sizes.  Expected shape: I/O requests
fall roughly as 1/block-size while the produced result never changes.
"""

from repro.core.blocks import compare_block_sizes
from repro.workloads.generators import chain_database

BLOCK_SIZES = (None, 2, 8, 32, 128)


def test_e5_block_based_execution(benchmark, report_table):
    database = chain_database(
        relations=4, tuples_per_relation=20, domain_size=6, null_rate=0.1, seed=5
    )

    reports = compare_block_sizes(database, BLOCK_SIZES, use_index=True)
    baseline_io = reports[0].io_requests
    rows = []
    for report in reports:
        label = "tuple-based" if report.block_size is None else f"blocks of {report.block_size}"
        rows.append(
            [
                label,
                report.results,
                report.tuple_reads,
                report.io_requests,
                f"{baseline_io / report.io_requests:.1f}x",
                report.bucket_probes,
                report.full_scans,
            ]
        )
    assert len({report.results for report in reports}) == 1
    # The store-layer work is independent of the scan granularity.
    assert len({report.bucket_probes for report in reports}) == 1

    report_table(
        "E5: tuple-based vs. block-based execution on a chain workload "
        f"({database.tuple_count()} tuples)",
        ["execution", "results", "tuple reads", "simulated I/O requests",
         "I/O reduction", "bucket probes", "full scans"],
        rows,
    )

    from repro.core.blocks import block_based_full_disjunction

    benchmark(lambda: block_based_full_disjunction(database, 32, use_index=True))
