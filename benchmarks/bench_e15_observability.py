"""E15 — observability overhead and the first-k latency distribution.

The serving stack meters every request (per-op counters, per-op and
per-engine latency histograms, cache and session series) and traces phases.
The claim this experiment holds the instrumentation to: with metrics
*enabled*, the E6-shaped serving hot path stays within **5%** of the same
run with ``REPRO_METRICS=off`` (a disabled registry handing out the shared
no-op metric), on request streams that are verified response-identical.

The second table summarizes the enabled arm's latency histograms — the
first-k pull distribution an operator actually scrapes: counts, means, and
how much of the stream resolved under 1/10/100 ms.

Set ``REPRO_BENCH_SMOKE=1`` to restrict the sweep to the smallest workload
(used by the CI smoke job).
"""

import asyncio
import os
import time

from repro.obs import MetricsRegistry
from repro.service.server import QueryServer
from repro.workloads.generators import star_database

#: Timed runs per arm; the best of each arm is compared (load spikes hit
#: single runs, not minima).
REPEATS = 3 if os.environ.get("REPRO_BENCH_SMOKE") else 5

#: The headline bound: enabled best over disabled best, minus one.
MAX_OVERHEAD = 0.05


async def _drive(database, registry):
    """One full serving conversation: open, drain in chunks, ingest, stats."""
    state = QueryServer(database, registry=registry)
    transcript = []
    opened = await state.handle_request({"op": "open", "engine": "fd"})
    session = opened["session"]
    while True:
        reply = await state.handle_request(
            {"op": "next", "session": session, "k": 4}
        )
        transcript.append((reply["results"], reply["exhausted"]))
        if reply["exhausted"]:
            break
    closed = await state.handle_request({"op": "close", "session": session})
    transcript.append(closed["ok"])
    return transcript, state


def _timed_run(database, enabled):
    registry = MetricsRegistry(enabled=enabled)
    started = time.perf_counter()
    transcript, state = asyncio.run(_drive(database, registry))
    elapsed = time.perf_counter() - started
    return elapsed, transcript, state


def _best_runs(database):
    """Interleave the two arms so drift hits both equally; keep the minima."""
    _timed_run(database, enabled=True)  # warm the catalog and code paths
    _timed_run(database, enabled=False)
    best = {True: None, False: None}
    transcripts = {}
    states = {}
    for _ in range(REPEATS):
        for enabled in (True, False):
            elapsed, transcript, state = _timed_run(database, enabled)
            if best[enabled] is None or elapsed < best[enabled]:
                best[enabled] = elapsed
            transcripts[enabled] = transcript
            states[enabled] = state
    return best, transcripts, states


def _bucket_share(sample, bound):
    """Fraction of observations at or below ``bound`` seconds."""
    if not sample["count"]:
        return 0.0
    best = 0
    for le, cumulative in sample["buckets"]:
        if le <= bound:
            best = cumulative
    return best / sample["count"]


def test_e15_observability_overhead(benchmark, report_table):
    workloads = (
        ((3, 5),) if os.environ.get("REPRO_BENCH_SMOKE") else ((3, 5), (4, 6))
    )
    rows = []
    final_states = None
    for spokes, per_relation in workloads:
        database = star_database(
            spokes=spokes, tuples_per_relation=per_relation, hub_domain=2, seed=4
        )
        best, transcripts, states = _best_runs(database)
        # The two arms must do byte-identical serving work — same results,
        # same chunk boundaries, same exhaustion point — or the timing
        # comparison is meaningless.
        assert transcripts[True] == transcripts[False]
        assert states[True].backend.steps == states[False].backend.steps
        overhead = best[True] / best[False] - 1.0
        assert overhead <= MAX_OVERHEAD, (
            f"metrics overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} on "
            f"star {spokes}x{per_relation} "
            f"(enabled {best[True]:.4f}s vs disabled {best[False]:.4f}s)"
        )
        rows.append(
            [
                f"star {spokes}x{per_relation}",
                states[True].requests,
                f"{best[False] * 1000:.2f}",
                f"{best[True] * 1000:.2f}",
                f"{overhead:+.1%}",
            ]
        )
        final_states = states

    report_table(
        "E15: serving hot path, metrics enabled vs REPRO_METRICS=off "
        f"(best of {REPEATS})",
        [
            "workload",
            "requests",
            "disabled (ms)",
            "enabled (ms)",
            "overhead",
        ],
        rows,
    )

    # The enabled arm's latency histograms: what a scrape actually shows.
    registry = final_states[True].registry
    latency_rows = []
    for family_name, label_of in (
        ("repro_request_latency_seconds", lambda s: f"op={s['labels']['op']}"),
        (
            "repro_engine_latency_seconds",
            lambda s: f"engine={s['labels']['engine']}/{s['labels']['phase']}",
        ),
    ):
        family = registry.family(family_name)
        for sample in family.samples():
            if not sample["count"]:
                continue
            latency_rows.append(
                [
                    label_of(sample),
                    sample["count"],
                    f"{sample['sum'] / sample['count'] * 1000:.3f}",
                    f"{_bucket_share(sample, 0.001):.0%}",
                    f"{_bucket_share(sample, 0.01):.0%}",
                    f"{_bucket_share(sample, 0.1):.0%}",
                ]
            )
    report_table(
        "E15b: first-k latency histograms of the enabled arm (largest workload)",
        ["series", "count", "mean (ms)", "≤1ms", "≤10ms", "≤100ms"],
        latency_rows,
    )

    database = star_database(
        spokes=3, tuples_per_relation=5, hub_domain=2, seed=4
    )
    benchmark(lambda: _timed_run(database, enabled=True))
