"""E3 — ranked retrieval: top-(k, f) with PriorityIncrementalFD (Theorem 5.5).

For a monotonically c-determined ranking function the top-k answers arrive in
ranking order after polynomial work; the alternative is to materialise the
whole full disjunction and sort it.  The experiment compares the two on a star
workload whose output is much larger than k, for ``f_max`` (c = 1) and for a
2-determined pair ranking, and also reports the cost of brute-forcing the
top-1 answer under ``f_sum`` — the function whose top-k problem is NP-hard
(Proposition 5.1) and which the ranked algorithm therefore refuses.
"""

import time

from repro.bench.reporting import probe_counters
from repro.core.full_disjunction import full_disjunction
from repro.core.incremental import FDStatistics
from repro.core.priority import top_k
from repro.core.ranking import (
    CDeterminedRanking,
    MaxRanking,
    SumRanking,
    importance_function,
    top_k_by_exhaustive_ranking,
)
from repro.workloads.generators import star_database

K_VALUES = (1, 5, 20)


def _importance(t):
    return float(sum(ord(ch) for ch in t.label) % 29)


def test_e3_ranked_topk(benchmark, report_table):
    database = star_database(spokes=5, tuples_per_relation=6, hub_domain=2, seed=2)
    imp = importance_function(_importance)
    rankings = {
        "f_max (c=1)": MaxRanking(_importance),
        "pair-sum (c=2)": CDeterminedRanking(
            2, lambda subset: sum(imp(t) for t in subset), name="pair_sum"
        ),
    }

    materialise_started = time.perf_counter()
    everything = full_disjunction(database, use_index=True)
    materialise_seconds = time.perf_counter() - materialise_started

    rows = []
    for name, ranking in rankings.items():
        for k in K_VALUES:
            statistics = FDStatistics()
            started = time.perf_counter()
            ranked = top_k(database, ranking, k, use_index=True, statistics=statistics)
            ranked_seconds = time.perf_counter() - started

            started = time.perf_counter()
            expected = top_k_by_exhaustive_ranking(everything, ranking, k)
            exhaustive_seconds = materialise_seconds + (time.perf_counter() - started)

            assert [score for _, score in ranked] == [ranking(ts) for ts in expected]
            bucket_probes, full_scans = probe_counters(statistics)
            rows.append(
                [
                    name,
                    k,
                    f"{ranked_seconds:.4f}",
                    f"{exhaustive_seconds:.4f}",
                    f"{exhaustive_seconds / ranked_seconds:.2f}x",
                    bucket_probes,
                    full_scans,
                ]
            )

    report_table(
        "E3: top-(k, f) retrieval on a 5-spoke star "
        f"(|FD| = {len(everything)})",
        ["ranking", "k", "PriorityIncrementalFD (s)", "materialise+sort (s)",
         "speedup", "bucket probes", "full scans"],
        rows,
    )

    # f_sum: rejected by the ranked algorithm, brute force is the only route.
    sum_ranking = SumRanking(_importance)
    started = time.perf_counter()
    top_k_by_exhaustive_ranking(everything, sum_ranking, 1)
    brute_force_seconds = materialise_seconds + (time.perf_counter() - started)
    report_table(
        "E3b: f_sum (not c-determined, Proposition 5.1) — brute force only",
        ["ranking", "k", "ranked algorithm", "materialise+sort (s)"],
        [["f_sum", 1, "rejected (RankingError)", f"{brute_force_seconds:.4f}"]],
    )

    ranking = MaxRanking(_importance)
    benchmark(lambda: top_k(database, ranking, 5, use_index=True))
