"""E13 — the packed-word kernel layer vs the big-int reference.

Three questions about the vectorized inner loops of
:mod:`repro.core.kernels`:

1. **Hot-path micro** — on an E6-style anchor bucket, how much faster is
   the packed kernel's whole-bucket subsumption probe
   (``batch_contains_superset``) than the per-candidate big-int loop?
   (The acceptance bar: ≥10x with a warm group matrix.)  The Line-14
   first-match merge probe and the retraction liveness sweep ride along.
2. **End-to-end** — the E1/E6 ``sets_scanned``-dominated driver configs
   under each kernel: wall time plus the guarantee that the emitted,
   *ordered* result streams are byte-identical.
3. **Mutations** — an E12-style stream with interleaved deletions and
   updates, replayed under each kernel: the delta maintainer's event
   streams must match event by event.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workloads (used by the CI smoke
job).  Tables land in ``benchmarks/artifacts/BENCH_E13.json``.
"""

import os
import random
import time

import pytest

from repro.core.full_disjunction import full_disjunction
from repro.core.kernels import numpy_available, use_kernel
from repro.core.kernels.bigint import BigintKernel
from repro.core.tupleset import TupleSet
from repro.service.delta import DeltaSummary, incremental_replay_stream
from repro.workloads.generators import chain_database, star_database
from repro.workloads.streaming import (
    ResultEvent,
    inject_mutations,
    streaming_star_workload,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the packed kernel needs NumPy"
)


def _ordered_stream(results):
    """The emitted stream as an ordered, canonical label sequence."""
    return [
        tuple(sorted((t.relation_name, t.label) for t in ts)) for ts in results
    ]


def _probe_workload():
    """A ``sets_scanned``-dominated E1-style anchor bucket.

    ``star 5x8`` produces ~1.5k stored result sets behind one anchor — the
    regime the whole-bucket probe is built for.  Half the probes are real
    subsets of a stored set (the big-int loop early-breaks), half are
    random 4-tuple sets that almost surely miss (the loop scans the whole
    bucket) — together they exercise both sides of the ``sets_scanned``
    early-break emulation.
    """
    database = star_database(spokes=5, tuples_per_relation=8, hub_domain=2, seed=4)
    catalog = database.catalog()
    results = full_disjunction(database, use_index=True)
    group = [TupleSet(ts.tuples, catalog=catalog) for ts in results]
    rng = random.Random(13)
    all_sorted = sorted(
        database.tuples(), key=lambda t: (t.relation_name, t.label)
    )
    probes = []
    for _ in range(16):
        donor = rng.choice(group)
        members = rng.sample(
            sorted(donor.tuples, key=lambda t: (t.relation_name, t.label)),
            rng.randint(1, len(donor)),
        )
        probes.append(TupleSet(members, catalog=catalog))
        probes.append(TupleSet(rng.sample(all_sorted, 4), catalog=catalog))
    return database, catalog, group, probes


def _best_of(repeats, loops, call):
    """Min-of-``repeats`` wall time of ``loops`` calls (warmup included)."""
    call()
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(loops):
            call()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _forced_vectorized(kernel):
    """Zero the small-batch cutoffs so every call takes the NumPy path.

    The production defaults delegate the Line-14 merge probe and the
    tombstone sweep to the big-int reference (it won those at every
    measured size); the forced instance measures *why* — the table shows
    the vectorized path losing on ops without an amortizable matrix.
    """
    for attr in (
        "MIN_GROUP", "MIN_WAITING", "MIN_TOMBSTONED", "MIN_DEAD", "MIN_EXTEND",
    ):
        setattr(kernel, attr, 0)
    return kernel


@requires_numpy
def test_e13a_packed_probe_micro(benchmark, report_table):
    from repro.core.kernels.packed import PackedKernel

    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    database, catalog, group, probes = _probe_workload()
    reference, packed = BigintKernel(), PackedKernel()
    vectorized = _forced_vectorized(PackedKernel())
    cache = {}
    loops = 5 if smoke else 20

    want = reference.batch_contains_superset(group, probes)
    got = packed.batch_contains_superset(group, probes, cache=cache, cache_key="g")
    assert got[0] == want[0] and got[1] == want[1]

    bigint_probe = _best_of(3, loops, lambda: reference.batch_contains_superset(group, probes))
    packed_probe = _best_of(
        3, loops,
        lambda: packed.batch_contains_superset(group, probes, cache=cache, cache_key="g"),
    )
    probe_speedup = bigint_probe / packed_probe

    # Line-14 first-match merge probe on the same sets.  The production
    # packed kernel delegates this op (MIN_WAITING is inf) because the
    # big-int loop's early break beats array setup at every size — the
    # forced-vectorized timing documents that regime.
    waiting, candidate = group[:-1], group[-1]
    assert vectorized.first_jcc_union(waiting, candidate) == reference.first_jcc_union(
        waiting, candidate
    )
    bigint_merge = _best_of(3, loops, lambda: reference.first_jcc_union(waiting, candidate))
    packed_merge = _best_of(3, loops, lambda: vectorized.first_jcc_union(waiting, candidate))

    # Retraction liveness sweep after a real tombstone — likewise delegated
    # in production (one big-int AND per set is already optimal).
    victim = sorted(group[0].tuples, key=lambda t: (t.relation_name, t.label))[0]
    database.remove_tuple(victim.relation_name, victim.label)
    assert vectorized.batch_contains_tombstoned(group, catalog) == (
        reference.batch_contains_tombstoned(group, catalog)
    )
    bigint_sweep = _best_of(3, loops, lambda: reference.batch_contains_tombstoned(group, catalog))
    packed_sweep = _best_of(3, loops, lambda: vectorized.batch_contains_tombstoned(group, catalog))

    report_table(
        f"E13a: kernel micro-benchmarks ({len(group)} stored sets, "
        f"{len(probes)} probes, best of 3 x {loops} calls)",
        ["operation", "bigint (s)", "packed (s)", "speedup"],
        [
            [
                "batch_contains_superset (warm bucket)",
                f"{bigint_probe:.5f}",
                f"{packed_probe:.5f}",
                f"{probe_speedup:.1f}x",
            ],
            [
                "first_jcc_union (forced vectorized; prod delegates)",
                f"{bigint_merge:.5f}",
                f"{packed_merge:.5f}",
                f"{bigint_merge / packed_merge:.1f}x",
            ],
            [
                "batch_contains_tombstoned (forced vectorized; prod delegates)",
                f"{bigint_sweep:.5f}",
                f"{packed_sweep:.5f}",
                f"{bigint_sweep / packed_sweep:.1f}x",
            ],
        ],
    )

    # The tentpole's acceptance bar: ≥10x on the sets_scanned-dominated
    # whole-bucket probe once the packed group matrix is warm.
    assert probe_speedup >= 10, f"packed probe speedup only {probe_speedup:.1f}x"

    benchmark(
        lambda: packed.batch_contains_superset(group, probes, cache=cache, cache_key="g")
    )


@requires_numpy
def test_e13b_end_to_end_streams_are_identical(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    workloads = [
        (
            "star 3x6",
            star_database(spokes=3, tuples_per_relation=6, hub_domain=2, seed=4),
        ),
        (
            "chain 4x8",
            chain_database(
                relations=4, tuples_per_relation=8, domain_size=3,
                null_rate=0.2, seed=7,
            ),
        ),
    ]
    if not smoke:
        workloads.append(
            (
                "star 4x6",
                star_database(spokes=4, tuples_per_relation=6, hub_domain=2, seed=4),
            )
        )
    rows = []
    for name, database in workloads:
        streams = {}
        seconds = {}
        for kernel in ("bigint", "packed"):
            with use_kernel(kernel):
                started = time.perf_counter()
                results = full_disjunction(database, use_index=True, backend="batched")
                seconds[kernel] = time.perf_counter() - started
                streams[kernel] = _ordered_stream(results)
        # Byte-identical ordered result streams, not merely equal sets.
        assert streams["bigint"] == streams["packed"]
        rows.append(
            [
                name,
                len(streams["packed"]),
                f"{seconds['bigint']:.3f}",
                f"{seconds['packed']:.3f}",
                f"{seconds['bigint'] / seconds['packed']:.2f}x",
                "identical",
            ]
        )
    report_table(
        "E13b: full-disjunction driver per kernel (batched backend, indexed store)",
        ["workload", "|FD|", "bigint (s)", "packed (s)", "speedup", "ordered stream"],
        rows,
    )


@requires_numpy
def test_e13c_mutation_stream_parity(report_table):
    smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    arrivals = 6 if smoke else 9
    mutations = 3 if smoke else 5
    rows = []
    for batch_size in (1, 3):
        events = {}
        seconds = {}
        for kernel in ("bigint", "packed"):
            workload = streaming_star_workload(
                spokes=3, base_tuples=4, arrivals=arrivals, hub_domain=2, seed=2
            )
            ops = inject_mutations(workload, mutations, seed=5)
            with use_kernel(kernel):
                summary = DeltaSummary()
                started = time.perf_counter()
                drained = list(
                    incremental_replay_stream(
                        workload.database,
                        ops,
                        batch_size=batch_size,
                        use_index=True,
                        summary=summary,
                    )
                )
                seconds[kernel] = time.perf_counter() - started
            events[kernel] = [
                (
                    event.kind,
                    event.after_arrivals,
                    tuple(sorted((t.relation_name, t.label) for t in event.tuple_set)),
                )
                for event in drained
                if isinstance(event, ResultEvent)
            ]
        # Emission *and* retraction events match one for one, in order.
        assert events["bigint"] == events["packed"]
        rows.append(
            [
                f"batch={batch_size}",
                len(events["packed"]),
                f"{seconds['bigint']:.3f}",
                f"{seconds['packed']:.3f}",
                "identical",
            ]
        )
    report_table(
        "E13c: delta maintenance under deletions/updates per kernel "
        f"({arrivals} arrivals, {mutations} mutations)",
        ["stream", "events", "bigint (s)", "packed (s)", "event stream"],
        rows,
    )
