"""E2 — incremental delivery: time to the first k answers (Theorem 4.10, PINC).

The defining property of ``IncrementalFD`` is that k answers cost polynomial
work in the input and k, while a batch algorithm returns nothing until the
entire (possibly exponential) result is computed.  On a star workload whose
full disjunction is large, the experiment measures the wall time to obtain the
first k answers from the streaming driver against the full batch time — the
batch baseline's time-to-first-answer equals its total time by construction.
"""

import time

from repro.baselines.batch import batch_full_disjunction
from repro.bench.reporting import probe_counters
from repro.core.full_disjunction import first_k, full_disjunction
from repro.core.incremental import FDStatistics
from repro.workloads.generators import star_database

K_VALUES = (1, 5, 25, 100)


def test_e2_time_to_first_k_answers(benchmark, report_table):
    database = star_database(spokes=5, tuples_per_relation=6, hub_domain=2, seed=0)

    total_statistics = FDStatistics()
    total_started = time.perf_counter()
    full_result = full_disjunction(database, use_index=True, statistics=total_statistics)
    incremental_total = time.perf_counter() - total_started

    batch_started = time.perf_counter()
    batch_result = batch_full_disjunction(database, use_index=True)
    batch_total = time.perf_counter() - batch_started
    assert {ts.labels() for ts in batch_result} == {ts.labels() for ts in full_result}

    rows = []
    for k in K_VALUES:
        statistics = FDStatistics()
        started = time.perf_counter()
        prefix = first_k(database, k, use_index=True, statistics=statistics)
        elapsed = time.perf_counter() - started
        assert len(prefix) == min(k, len(full_result))
        bucket_probes, full_scans = probe_counters(statistics)
        rows.append(
            [
                k,
                f"{elapsed:.4f}",
                f"{batch_total:.4f}",
                f"{elapsed / incremental_total:.1%}",
                bucket_probes,
                full_scans,
            ]
        )
    total_bucket_probes, total_full_scans = probe_counters(total_statistics)
    rows.append(
        [
            f"all ({len(full_result)})",
            f"{incremental_total:.4f}",
            f"{batch_total:.4f}",
            "100.0%",
            total_bucket_probes,
            total_full_scans,
        ]
    )

    report_table(
        "E2: time to the first k answers on a 5-spoke star "
        f"(|FD| = {len(full_result)})",
        ["k", "IncrementalFD first-k (s)", "Batch time-to-first (s)",
         "fraction of full incremental run", "bucket probes", "full scans"],
        rows,
    )

    benchmark(lambda: first_k(database, 10, use_index=True))
