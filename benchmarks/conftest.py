"""Shared configuration of the benchmark harness.

Every module in this directory regenerates one experiment of DESIGN.md
(tables T2/T3 and experiments E1–E10).  Each module:

* prints the experiment's table of rows/series (visible with ``-s``; also
  appended to ``benchmarks/results.txt`` so EXPERIMENTS.md can quote it),
* records the same table into a machine-readable JSON artifact
  (``benchmarks/artifacts/BENCH_<EXPERIMENT>.json``) so the performance
  trajectory can be tracked across commits — CI uploads this directory, and
* exercises the core operation through the ``benchmark`` fixture so the run is
  timed by pytest-benchmark (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.reporting import BenchArtifacts, experiment_id, format_table

#: File collecting the printed experiment tables of the latest run.
RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"

#: Directory collecting the per-experiment BENCH_*.json artifacts.
ARTIFACTS_DIR = pathlib.Path(__file__).parent / "artifacts"

_ARTIFACTS = BenchArtifacts(ARTIFACTS_DIR)


def pytest_sessionstart(session):
    # Start a fresh results file and artifact set per benchmark session.
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()
    _ARTIFACTS.reset()


@pytest.fixture
def report_table(request):
    """Print an experiment table, append it to ``results.txt``, record JSON."""

    experiment = experiment_id(request.module.__name__)

    def _report(title, headers, rows):
        rows = [list(row) for row in rows]
        rendered = format_table(title, headers, [[str(c) for c in row] for row in rows])
        print()
        print(rendered)
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n\n")
        _ARTIFACTS.record(experiment, title, headers, rows)
        return rendered

    return _report


@pytest.fixture
def report_memory(request):
    """Record a machine-checkable memory measurement into the artifact."""

    experiment = experiment_id(request.module.__name__)

    def _report(label, peak_rss_bytes, allocated_bytes=None, budget_bytes=None):
        _ARTIFACTS.record_memory(
            experiment,
            label,
            peak_rss_bytes,
            allocated_bytes=allocated_bytes,
            budget_bytes=budget_bytes,
        )

    return _report
