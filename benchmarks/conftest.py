"""Shared configuration of the benchmark harness.

Every module in this directory regenerates one experiment of DESIGN.md
(tables T2/T3 and experiments E1–E9).  Each module:

* prints the experiment's table of rows/series (visible with ``-s``; also
  appended to ``benchmarks/results.txt`` so EXPERIMENTS.md can quote it), and
* exercises the core operation through the ``benchmark`` fixture so the run is
  timed by pytest-benchmark (``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.reporting import format_table

#: File collecting the printed experiment tables of the latest run.
RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


def pytest_sessionstart(session):
    # Start a fresh results file per benchmark session.
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()


@pytest.fixture
def report_table():
    """Print an experiment table and append it to ``benchmarks/results.txt``."""

    def _report(title, headers, rows):
        rendered = format_table(title, headers, [[str(c) for c in row] for row in rows])
        print()
        print(rendered)
        with RESULTS_PATH.open("a", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n\n")
        return rendered

    return _report
